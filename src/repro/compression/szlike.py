"""An SZ-style error-bounded lossy compressor for regular-grid fields.

Pipeline (compress):

1. **Quantize** the field to integer bins of width ``2 * error_bound`` —
   the reconstruction ``bin * 2 * eb`` is then within ``eb`` of every
   original value (the absolute-error-bound guarantee);
2. **Decorrelate** the integer bin lattice with the 3D Lorenzo transform
   (first differences applied along each axis).  On smooth scientific
   fields the deltas concentrate near zero.  The transform is exactly
   invertible over the integers via cumulative sums, so — unlike classic
   sequential SZ — both directions are fully vectorized;
3. **Entropy-code** the deltas: zig-zag map to unsigned, pack to the
   narrowest sufficient integer width, DEFLATE (``zlib``).

Decompress inverts the three stages.  Error bounds are supported in
absolute form or relative to the field's value range.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.grid import UniformGrid

__all__ = ["SZCompressor", "CompressedField", "compression_ratio"]


def _lorenzo_forward(q: np.ndarray) -> np.ndarray:
    """3D integer Lorenzo transform: successive first differences."""
    d = q.copy()
    for axis in range(3):
        d = np.diff(d, axis=axis, prepend=np.take(d, [0], axis=axis) * 0)
    return d


def _lorenzo_inverse(d: np.ndarray) -> np.ndarray:
    """Exact inverse: cumulative sums along each axis (reverse order)."""
    q = d.copy()
    for axis in reversed(range(3)):
        q = np.cumsum(q, axis=axis)
    return q


def _pack(deltas: np.ndarray) -> tuple[bytes, str]:
    """Zig-zag + narrowest-width pack + DEFLATE."""
    # Zig-zag: interleave signs so small magnitudes stay small unsigned.
    zz = (deltas >> 63) ^ (deltas << 1)
    peak = int(zz.max()) if zz.size else 0
    for dtype in ("<u1", "<u2", "<u4", "<u8"):
        if peak <= np.iinfo(np.dtype(dtype)).max:
            break
    packed = zz.astype(np.dtype(dtype))
    return zlib.compress(packed.tobytes(), level=6), dtype


def _unpack(blob: bytes, dtype: str, count: int) -> np.ndarray:
    zz = np.frombuffer(zlib.decompress(blob), dtype=np.dtype(dtype)).astype(np.int64)
    if zz.size != count:
        raise ValueError(f"corrupt payload: {zz.size} deltas for {count} voxels")
    return (zz >> 1) ^ -(zz & 1)


@dataclass(frozen=True)
class CompressedField:
    """The compressed artifact: payload + everything needed to decode."""

    dims: tuple[int, int, int]
    error_bound: float        # absolute bound actually applied
    offset: float             # value-domain offset (field minimum)
    payload: bytes
    delta_dtype: str

    @property
    def nbytes(self) -> int:
        """Approximate on-disk size (payload + fixed header)."""
        return len(self.payload) + 64

    def decompress(self) -> np.ndarray:
        """Reconstruct the field (within ``error_bound`` everywhere)."""
        n = int(np.prod(self.dims))
        deltas = _unpack(self.payload, self.delta_dtype, n).reshape(self.dims)
        bins = _lorenzo_inverse(deltas)
        return self.offset + bins.astype(np.float64) * (2.0 * self.error_bound)


class SZCompressor:
    """Error-bounded lossy compression of scalar grid fields.

    Parameters
    ----------
    error_bound:
        The bound value; interpretation set by ``mode``.
    mode:
        ``"absolute"`` — ``error_bound`` is the maximum absolute
        reconstruction error; ``"relative"`` — the bound is
        ``error_bound * (max - min)`` of each compressed field.
    """

    def __init__(self, error_bound: float = 1e-3, mode: str = "relative") -> None:
        if error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {error_bound}")
        if mode not in ("absolute", "relative"):
            raise ValueError(f"mode must be 'absolute' or 'relative', got {mode!r}")
        self.error_bound = float(error_bound)
        self.mode = mode

    def _absolute_bound(self, values: np.ndarray) -> float:
        if self.mode == "absolute":
            return self.error_bound
        span = float(values.max() - values.min())
        return self.error_bound * (span if span > 0 else 1.0)

    def compress(self, grid: UniformGrid, values: np.ndarray) -> CompressedField:
        """Compress a field living on ``grid``."""
        field = grid.validate_field(values).astype(np.float64, copy=False)
        if not np.all(np.isfinite(field)):
            raise ValueError("cannot compress non-finite values")
        eb = self._absolute_bound(field)
        offset = float(field.min())
        bins = np.rint((field - offset) / (2.0 * eb)).astype(np.int64)
        deltas = _lorenzo_forward(bins)
        payload, dtype = _pack(deltas.ravel())
        return CompressedField(
            dims=grid.dims,
            error_bound=eb,
            offset=offset,
            payload=payload,
            delta_dtype=dtype,
        )

    def roundtrip(self, grid: UniformGrid, values: np.ndarray) -> tuple[np.ndarray, CompressedField]:
        """``(reconstruction, artifact)`` in one call."""
        artifact = self.compress(grid, values)
        return artifact.decompress(), artifact


def compression_ratio(grid: UniformGrid, artifact: CompressedField, dtype=np.float64) -> float:
    """Original bytes / compressed bytes (original stored as ``dtype``)."""
    original = grid.num_points * np.dtype(dtype).itemsize
    return original / artifact.nbytes
