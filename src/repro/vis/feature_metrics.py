"""Feature-preservation metrics.

SNR measures pointwise fidelity; these metrics measure what the paper's
*users* care about — whether the features that drive visualization
(isosurfaces, value distributions) survive sampling + reconstruction:

* :func:`isosurface_iou` — volumetric intersection-over-union of the
  super-level sets (``field >= isovalue``) of original vs reconstruction:
  1.0 means the extracted isosurface encloses exactly the same region;
* :func:`histogram_intersection` — overlap of the two fields' value
  distributions (the property Su et al. [2] style samplers preserve).
"""

from __future__ import annotations

import numpy as np

__all__ = ["occupancy", "isosurface_iou", "histogram_intersection"]


def occupancy(values: np.ndarray, isovalue: float) -> np.ndarray:
    """Boolean super-level-set mask ``values >= isovalue``."""
    return np.asarray(values) >= isovalue


def isosurface_iou(original: np.ndarray, reconstructed: np.ndarray, isovalue: float) -> float:
    """IoU of the two fields' super-level sets at ``isovalue``.

    Returns 1.0 when both sets are empty (the feature is absent from both,
    which is agreement).
    """
    a = occupancy(original, isovalue)
    b = occupancy(reconstructed, isovalue)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0
    inter = np.logical_and(a, b).sum()
    return float(inter / union)


def histogram_intersection(
    original: np.ndarray,
    reconstructed: np.ndarray,
    bins: int = 64,
) -> float:
    """Normalized histogram intersection in ``[0, 1]``.

    Both fields are binned over the *original's* value range so mass the
    reconstruction places outside that range counts as lost.
    """
    if bins < 2:
        raise ValueError(f"need at least 2 bins, got {bins}")
    a = np.asarray(original, dtype=np.float64).ravel()
    b = np.asarray(reconstructed, dtype=np.float64).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("cannot compare empty fields")
    lo, hi = float(a.min()), float(a.max())
    if hi <= lo:
        hi = lo + 1.0
    ha, _ = np.histogram(a, bins=bins, range=(lo, hi))
    hb, _ = np.histogram(b, bins=bins, range=(lo, hi))
    ha = ha / a.size
    hb = hb / b.size
    return float(np.minimum(ha, hb).sum())
