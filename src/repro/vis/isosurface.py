"""Isosurface extraction by marching tetrahedra.

Each grid cell (cube) is split into six tetrahedra; within a tetrahedron
the scalar field is treated as linear, so the isosurface crosses each edge
at most once and the per-tet surface is one or two triangles — no 256-case
lookup table required, and the result is watertight across shared faces.

The implementation is vectorized over all tetrahedra of the volume: the
four corner values of every tet are gathered at once, sign patterns are
classified in bulk, and edge interpolation runs on flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.grid import UniformGrid

__all__ = ["IsoSurface", "extract_isosurface"]

# The six tetrahedra of a cube, as corner indices of the cube's 8 vertices
# (vertex i has offsets ((i>>2)&1, (i>>1)&1, i&1) in x, y, z).  This is the
# standard diagonal split around the 0-7 main diagonal.
_CUBE_TETS = np.array(
    [
        [0, 5, 1, 7],
        [0, 1, 3, 7],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
        [0, 4, 5, 7],
    ],
    dtype=np.int64,
)

_CORNER_OFFSETS = np.array(
    [[(i >> 2) & 1, (i >> 1) & 1, i & 1] for i in range(8)], dtype=np.int64
)

# For a tetrahedron with corners (a, b, c, d), the six edges:
_TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]], dtype=np.int64
)

_EDGE_ID = {tuple(sorted(e)): k for k, e in enumerate(_TET_EDGES.tolist())}


def _build_case_table() -> dict[int, list[tuple[int, int, int]]]:
    """Triangulation per 4-bit "corner above isovalue" mask.

    One corner separated → the 3 edges touching it cross → 1 triangle.
    Two corners separated → 4 crossing edges forming a quad; walking the
    ring (i,k) → (i,l) → (j,l) → (j,k) keeps consecutive crossing points on
    a shared tet face, so splitting along one diagonal gives a planar-safe
    pair of triangles.
    """
    table: dict[int, list[tuple[int, int, int]]] = {}
    for mask in range(16):
        above = [i for i in range(4) if (mask >> i) & 1]
        below = [i for i in range(4) if not (mask >> i) & 1]
        if not above or not below:
            table[mask] = []
        elif len(above) == 1 or len(below) == 1:
            solo = above[0] if len(above) == 1 else below[0]
            edges = [
                _EDGE_ID[tuple(sorted((solo, o)))] for o in range(4) if o != solo
            ]
            table[mask] = [tuple(edges)]
        else:
            i, j = above
            k, l = below
            ring = [
                _EDGE_ID[tuple(sorted((i, k)))],
                _EDGE_ID[tuple(sorted((i, l)))],
                _EDGE_ID[tuple(sorted((j, l)))],
                _EDGE_ID[tuple(sorted((j, k)))],
            ]
            table[mask] = [
                (ring[0], ring[1], ring[2]),
                (ring[0], ring[2], ring[3]),
            ]
    return table


_TET_TRIANGLES: dict[int, list[tuple[int, int, int]]] = _build_case_table()


@dataclass(frozen=True)
class IsoSurface:
    """A triangle mesh: ``vertices`` (V, 3) and ``triangles`` (T, 3)."""

    vertices: np.ndarray
    triangles: np.ndarray
    isovalue: float

    @property
    def num_triangles(self) -> int:
        return int(self.triangles.shape[0])

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.shape[0])

    def area(self) -> float:
        """Total surface area."""
        if self.num_triangles == 0:
            return 0.0
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        cross = np.cross(b - a, c - a)
        return float(0.5 * np.linalg.norm(cross, axis=1).sum())

    def centroid(self) -> np.ndarray:
        """Area-weighted surface centroid (zero vector for empty meshes)."""
        if self.num_triangles == 0:
            return np.zeros(3)
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        centers = (a + b + c) / 3.0
        weights = 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)
        total = weights.sum()
        if total == 0:
            return centers.mean(axis=0)
        return (centers * weights[:, None]).sum(axis=0) / total

    def write_obj(self, path: str | Path) -> None:
        """Export as a Wavefront OBJ file (1-based indices)."""
        with open(path, "w") as fh:
            fh.write(f"# isosurface at {self.isovalue}\n")
            for v in self.vertices:
                fh.write(f"v {v[0]} {v[1]} {v[2]}\n")
            for t in self.triangles:
                fh.write(f"f {t[0] + 1} {t[1] + 1} {t[2] + 1}\n")


def extract_isosurface(
    grid: UniformGrid,
    values: np.ndarray,
    isovalue: float,
) -> IsoSurface:
    """Extract the ``isovalue`` level set of a scalar field.

    Returns an empty mesh when the isovalue misses the field's range.
    """
    field = grid.validate_field(values).astype(np.float64, copy=False)
    nx, ny, nz = grid.dims
    if min(nx, ny, nz) < 2 or not (field.min() <= isovalue <= field.max()):
        return IsoSurface(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64), isovalue)

    # Corner scalar values of every cell, shaped (cells, 8).
    base = np.stack(
        np.meshgrid(
            np.arange(nx - 1), np.arange(ny - 1), np.arange(nz - 1), indexing="ij"
        ),
        axis=-1,
    ).reshape(-1, 3)
    corner_idx = base[:, None, :] + _CORNER_OFFSETS[None, :, :]  # (cells, 8, 3)
    corner_vals = field[
        corner_idx[..., 0], corner_idx[..., 1], corner_idx[..., 2]
    ]  # (cells, 8)
    corner_pos = (
        np.asarray(grid.origin)
        + corner_idx.astype(np.float64) * np.asarray(grid.spacing)
    )  # (cells, 8, 3)

    # Expand to tetrahedra: (cells*6, 4).
    tet_vals = corner_vals[:, _CUBE_TETS].reshape(-1, 4)
    tet_pos = corner_pos[:, _CUBE_TETS, :].reshape(-1, 4, 3)

    above = tet_vals > isovalue
    mask = (
        above[:, 0].astype(np.int64)
        | (above[:, 1] << 1)
        | (above[:, 2] << 2)
        | (above[:, 3] << 3)
    )

    verts: list[np.ndarray] = []
    tris: list[np.ndarray] = []
    offset = 0
    for case, triangles in _TET_TRIANGLES.items():
        if not triangles:
            continue
        rows = np.flatnonzero(mask == case)
        if rows.size == 0:
            continue
        vals = tet_vals[rows]
        pos = tet_pos[rows]
        # Interpolated crossing point on each of the 6 edges (only the ones
        # referenced by the case's triangles are meaningful).
        edge_pts = np.empty((rows.size, 6, 3))
        for e, (i, j) in enumerate(_TET_EDGES):
            vi, vj = vals[:, i], vals[:, j]
            denom = vj - vi
            t = np.where(np.abs(denom) > 1e-300, (isovalue - vi) / np.where(denom == 0, 1, denom), 0.5)
            t = np.clip(t, 0.0, 1.0)
            edge_pts[:, e, :] = pos[:, i, :] + t[:, None] * (pos[:, j, :] - pos[:, i, :])
        for tri in triangles:
            verts.append(edge_pts[:, tri, :].reshape(-1, 3))
            n = rows.size
            tris.append(offset + np.arange(3 * n).reshape(n, 3))
            offset += 3 * n

    if not verts:
        return IsoSurface(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64), isovalue)
    vertices = np.concatenate(verts, axis=0)
    triangles = np.concatenate(tris, axis=0)

    # Drop degenerate (zero-area) triangles produced when a crossing lands
    # exactly on a shared corner.
    a = vertices[triangles[:, 0]]
    b = vertices[triangles[:, 1]]
    c = vertices[triangles[:, 2]]
    areas = 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)
    triangles = triangles[areas > 1e-14]
    return IsoSurface(vertices, triangles, isovalue)
