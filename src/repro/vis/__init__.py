"""Scientific-visualization substrate.

The paper's motivation for feature-preserving sampling is downstream
visualization — "volume rendering and isosurface contouring" (Sec I).
This package provides the minimal versions of those consumers so the repo
can evaluate reconstructions the way the paper's users would:

* :mod:`repro.vis.isosurface` — marching-tetrahedra isosurface extraction
  (triangle mesh + OBJ export);
* :mod:`repro.vis.render` — axis-aligned maximum-intensity / average
  projections and slices, with PGM/PPM export;
* :mod:`repro.vis.feature_metrics` — feature-preservation scores
  (isosurface IoU, histogram intersection) used by the extension bench.
"""

from repro.vis.isosurface import IsoSurface, extract_isosurface
from repro.vis.render import (
    average_projection,
    max_intensity_projection,
    slice_field,
    to_image_u8,
    write_pgm,
)
from repro.vis.feature_metrics import (
    histogram_intersection,
    isosurface_iou,
    occupancy,
)

__all__ = [
    "IsoSurface",
    "extract_isosurface",
    "max_intensity_projection",
    "average_projection",
    "slice_field",
    "to_image_u8",
    "write_pgm",
    "occupancy",
    "isosurface_iou",
    "histogram_intersection",
]
