"""Axis-aligned projections and slices with PGM/PPM export.

A minimal stand-in for the volume rendering the paper's figures use:
maximum-intensity and average projections collapse the volume along one
axis; slices extract a single plane.  Images are float arrays convertible
to 8-bit and writable as portable graymaps, so reconstructions can be
eyeballed without any plotting dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.grid import UniformGrid

__all__ = [
    "max_intensity_projection",
    "average_projection",
    "slice_field",
    "to_image_u8",
    "write_pgm",
]


def _validate(grid: UniformGrid, values: np.ndarray, axis: int) -> np.ndarray:
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    return grid.validate_field(values)


def max_intensity_projection(grid: UniformGrid, values: np.ndarray, axis: int = 2) -> np.ndarray:
    """Maximum along ``axis`` — the classic MIP rendering."""
    return _validate(grid, values, axis).max(axis=axis)


def average_projection(grid: UniformGrid, values: np.ndarray, axis: int = 2) -> np.ndarray:
    """Mean along ``axis`` (an unweighted emission-only volume rendering)."""
    return _validate(grid, values, axis).mean(axis=axis)


def slice_field(grid: UniformGrid, values: np.ndarray, axis: int = 2, index: int | None = None) -> np.ndarray:
    """One plane of the volume (defaults to the middle slice)."""
    field = _validate(grid, values, axis)
    n = grid.dims[axis]
    if index is None:
        index = n // 2
    if not (0 <= index < n):
        raise ValueError(f"slice index {index} out of range [0, {n})")
    return np.take(field, index, axis=axis)


def to_image_u8(image: np.ndarray, vmin: float | None = None, vmax: float | None = None) -> np.ndarray:
    """Normalize a 2D float array to uint8 [0, 255].

    Constant images map to mid-gray.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2D image, got shape {image.shape}")
    lo = float(image.min()) if vmin is None else float(vmin)
    hi = float(image.max()) if vmax is None else float(vmax)
    if hi <= lo:
        return np.full(image.shape, 128, dtype=np.uint8)
    scaled = np.clip((image - lo) / (hi - lo), 0.0, 1.0)
    return (scaled * 255.0 + 0.5).astype(np.uint8)


def write_pgm(path: str | Path, image: np.ndarray, vmin: float | None = None, vmax: float | None = None) -> None:
    """Write a 2D array as a binary PGM (P5) image."""
    u8 = to_image_u8(image, vmin=vmin, vmax=vmax)
    h, w = u8.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(u8.tobytes())
