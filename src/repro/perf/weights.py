"""Flat-packed weight snapshots and bit-exact weight deltas.

The campaign scheduler (:mod:`repro.perf.campaign`) ships model weights to
its persistent workers through shared memory: the full weight vector goes
out **once** per campaign, and each fine-tuned timestep afterwards is
published as a *delta* against that base.  Floating-point arithmetic deltas
(``base + (new - base)``) are not bit-exact, so deltas here are bitwise:
the XOR of the two weight vectors' IEEE-754 bit patterns.  Applying a delta
reproduces the new weights **exactly** — every reconstruction stays
bit-identical to the serial path — and unchanged weights XOR to zero, so
deltas stay sparse/compressible for mostly-frozen (Case-2) fine-tuning.

:class:`WeightSnapshot` is also the in-process rollback primitive behind
:meth:`repro.nn.Sequential.snapshot` when a single flat vector is more
convenient than per-parameter copies (hashing, shipping, diffing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WeightSnapshot",
    "snapshot_weights",
    "restore_weights",
    "weight_delta",
    "apply_weight_delta",
]


@dataclass(frozen=True)
class WeightSnapshot:
    """One network's learned state as a single flat float64 vector.

    ``data`` concatenates every parameter in :meth:`Sequential.parameters`
    order; ``shapes`` and ``names`` let :func:`restore_weights` unflatten it
    back, and ``trainable`` preserves Case-2 freeze flags.
    """

    data: np.ndarray                  # (W,) float64, read-only by convention
    shapes: tuple[tuple[int, ...], ...]
    names: tuple[str, ...]
    trainable: tuple[bool, ...]

    @property
    def num_weights(self) -> int:
        return int(self.data.size)


def snapshot_weights(network) -> WeightSnapshot:
    """Flatten a :class:`repro.nn.Sequential`'s parameters into one vector."""
    params = network.parameters()
    if not params:
        raise ValueError("network has no parameters to snapshot")
    data = np.concatenate([np.asarray(p.value, dtype=np.float64).ravel() for p in params])
    return WeightSnapshot(
        data=data,
        shapes=tuple(tuple(p.value.shape) for p in params),
        names=tuple(p.name for p in params),
        trainable=tuple(bool(p.trainable) for p in params),
    )


def restore_weights(network, snapshot: WeightSnapshot | np.ndarray) -> None:
    """Write a snapshot (or a bare flat vector) back into ``network`` in place.

    A bare ``np.ndarray`` restores values only (freeze flags untouched) —
    the shape bookkeeping comes from the network itself.  Parameter count
    and total size must match exactly.
    """
    params = network.parameters()
    flat = snapshot.data if isinstance(snapshot, WeightSnapshot) else np.asarray(snapshot)
    total = sum(p.size for p in params)
    if flat.size != total:
        raise ValueError(f"flat vector has {flat.size} weights, network has {total}")
    if isinstance(snapshot, WeightSnapshot) and len(snapshot.shapes) != len(params):
        raise ValueError(
            f"snapshot has {len(snapshot.shapes)} parameters, network has {len(params)}"
        )
    offset = 0
    for i, p in enumerate(params):
        n = p.size
        p.value[...] = flat[offset : offset + n].reshape(p.value.shape)
        if isinstance(snapshot, WeightSnapshot):
            p.trainable = bool(snapshot.trainable[i])
        p.zero_grad()
        offset += n


def weight_delta(base: WeightSnapshot | np.ndarray, new: WeightSnapshot | np.ndarray) -> np.ndarray:
    """Bitwise (XOR) delta between two flat weight vectors.

    Returns a ``uint64`` array the size of the weight vector;
    ``apply_weight_delta(base, delta)`` reproduces ``new`` bit-for-bit
    (including signed zeros and NaN payloads, which an arithmetic delta
    would corrupt).  Identical weights delta to zero.
    """
    b = base.data if isinstance(base, WeightSnapshot) else np.asarray(base, dtype=np.float64)
    n = new.data if isinstance(new, WeightSnapshot) else np.asarray(new, dtype=np.float64)
    if b.shape != n.shape:
        raise ValueError(f"weight vectors differ in size: {b.shape} vs {n.shape}")
    return np.bitwise_xor(b.view(np.uint64), n.view(np.uint64))


def apply_weight_delta(
    base: WeightSnapshot | np.ndarray,
    delta: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Reconstruct the new flat weight vector from ``base`` and a XOR delta.

    ``out`` (float64, same size) receives the result in place when given —
    the campaign workers decode into a reused scratch buffer.
    """
    b = base.data if isinstance(base, WeightSnapshot) else np.asarray(base, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.uint64)
    if b.shape != delta.shape:
        raise ValueError(f"delta has {delta.size} entries, base has {b.size}")
    if out is None:
        out = np.empty_like(b)
    np.bitwise_xor(b.view(np.uint64), delta, out=out.view(np.uint64))
    return out
