"""Zero-copy task transport: numpy arrays in POSIX shared memory.

``parallel_reconstruct`` used to pickle the full sampled point cloud and
each chunk's query matrix into every worker — for a 128³ grid that is
hundreds of megabytes serialized per reconstruction.  This module ships
the arrays once: the parent copies each array into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and workers
receive only a tiny picklable :class:`SharedArraySpec` (segment name +
shape + dtype) from which they map a zero-copy numpy view.  Results are
written back into a shared output segment, so a chunk's payload and
result pickles shrink to a few hundred bytes regardless of grid size.

Lifetime protocol:

* the parent owns the segments through a :class:`SharedArrayBundle` and
  must call :meth:`SharedArrayBundle.close` (unlinking) when done — use a
  ``try/finally``;
* workers attach with :func:`attached_arrays` (a context manager) which
  drops its numpy views before closing the mapping, the order
  ``SharedMemory.close`` requires;
* attaching never registers the segment with the resource tracker (on
  Python < 3.13, where attach-side tracking is unavoidable through the
  public API, registration is suppressed for the duration of the attach) —
  the parent's unlink stays authoritative and pooled workers don't race
  each other's tracker bookkeeping.

Environments without a usable ``/dev/shm`` raise ``OSError`` at creation;
callers degrade to the pickle transport (see
:func:`repro.parallel.parallel_reconstruct`'s ``transport="auto"``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArraySpec", "SharedArrayBundle", "attached_arrays"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to one shared array: everything a worker needs to map it."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _attach(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    Before Python 3.13 (``track=False``) attaching registers the segment
    with the process's resource tracker, which then tries to unlink it at
    exit and races sibling workers' unregisters.  Attach-side tracking is
    wrong for our protocol — the creating parent owns cleanup — so it is
    suppressed either way.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedArrayBundle:
    """Parent-side owner of a named set of shared arrays."""

    def __init__(self, segments: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]]):
        self._segments = segments

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy each array into its own shared segment.

        Raises ``OSError`` when shared memory is unavailable (no
        ``/dev/shm``, exhausted quota); the partial bundle is cleaned up
        before re-raising.
        """
        segments: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        try:
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                segments[name] = (shm, view)
        except BaseException:
            cls(segments).close()
            raise
        return cls(segments)

    @property
    def specs(self) -> dict[str, SharedArraySpec]:
        """Picklable worker payload: ``{array name: SharedArraySpec}``."""
        return {
            name: SharedArraySpec(shm.name, view.shape, view.dtype.str)
            for name, (shm, view) in self._segments.items()
        }

    def view(self, name: str) -> np.ndarray:
        """The parent's zero-copy view of one array (valid until close)."""
        return self._segments[name][1]

    @property
    def nbytes(self) -> int:
        return sum(view.nbytes for _, view in self._segments.values())

    def close(self) -> None:
        """Release and unlink every segment; safe to call twice.

        Entries are popped before closing so the ``(shm, view)`` tuple —
        and with it the numpy view pinning the mapped buffer — is dropped
        *before* ``shm.close()``.  Iterating the dict instead would keep
        every view alive through its tuple, making each close raise a
        (previously swallowed) ``BufferError`` and deferring the actual
        unmap to garbage collection.
        """
        segments, self._segments = self._segments, {}
        while segments:
            _, (shm, view) = segments.popitem()
            del view
            try:
                shm.close()
            except BufferError:  # pragma: no cover - caller kept a view alive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


@contextmanager
def attached_arrays(specs: dict[str, SharedArraySpec]):
    """Worker-side map of every spec to a numpy view; detaches on exit.

    ::

        with attached_arrays(payload.specs) as arrays:
            arrays["out"][start:stop] = compute(arrays["points"], ...)

    Views are invalid outside the ``with`` block — copy anything that must
    outlive it.
    """
    handles: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    try:
        for name, spec in specs.items():
            shm = _attach(spec.shm_name)
            handles.append(shm)
            arrays[name] = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        yield arrays
    finally:
        arrays.clear()
        for shm in handles:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - caller kept a view alive
                pass
