# hot-path
"""Workspace arenas: preallocated, reusable buffers for the training/inference fast path.

The numpy engine's hot loops (``Dense``/``ReLU`` forward-backward, the
optimizer step, chunked FCNN inference) are memory-bandwidth bound: at
batch 4096 a single ``Dense(23, 512)`` forward materializes a 16 MiB
activation, and the naive expression forms (``x @ W + b``,
``np.where(mask, x, 0)``) allocate a fresh temporary per operation per
batch.  A :class:`Workspace` removes those allocations: buffers are keyed
on ``(tag, shape, dtype)`` and handed back to the same call site every
step, so after the first batch of an epoch the training loop runs
allocation-free (the arena reaches steady state — every subsequent
request is a *hit*).

Bit-exactness contract: the fast path only changes *where* results are
written, never the operations or their order, so losses and weights match
the allocating path bit for bit (IEEE sign-of-zero excepted — ``x * mask``
yields ``-0.0`` where ``np.where`` yields ``+0.0``; the values compare
equal and cannot diverge downstream).  See ``docs/PERFORMANCE.md``.

A workspace is bound to one model at a time (tags embed the layer index
assigned by :meth:`repro.nn.Sequential.attach_workspace`); sharing one
arena between two concurrently-active models aliases their buffers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """A get-or-allocate buffer arena keyed on ``(tag, shape, dtype)``.

    Parameters
    ----------
    dtype:
        Default dtype of requested buffers — the *compute* dtype of the
        fast path (:class:`repro.perf.DtypePolicy`).  ``float64`` keeps
        seed numerics; ``float32`` doubles effective memory bandwidth at
        reduced precision.
    """

    def __init__(self, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._buffers: dict[tuple, np.ndarray] = {}
        self._owned: set[int] = set()
        self.hits = 0
        self.misses = 0

    def buffer(self, tag, shape, dtype=None) -> np.ndarray:
        """The arena's buffer for ``(tag, shape, dtype)``, allocating on first use.

        The returned array is *reused*: contents are undefined on entry and
        valid only until the same key is requested again.  Callers must
        fully overwrite it (``out=`` semantics).
        """
        dt = self.dtype if dtype is None else np.dtype(dtype)
        key = (tag, tuple(int(s) for s in shape), dt)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=dt)
            self._buffers[key] = buf
            self._owned.add(id(buf))
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def owns(self, array: np.ndarray) -> bool:
        """True when ``array`` is one of this arena's buffers.

        Layers use this to decide whether an in-place update is safe: a
        workspace buffer may be clobbered (its producer has already been
        consumed by the time the next layer runs), a caller-owned array
        may not.
        """
        return id(array) in self._owned

    def preallocate(self, entries) -> None:
        """Warm the arena: ``entries`` is an iterable of ``(tag, shape[, dtype])``.

        Optional — buffers are created on demand — but warming moves every
        allocation ahead of the first timed step.
        """
        for entry in entries:  # intentional startup allocation, not steady state
            tag, shape = entry[0], entry[1]
            dtype = entry[2] if len(entry) > 2 else None
            self.buffer(tag, shape, dtype)
        # preallocation is not a miss of the steady state: reset the stats
        self.hits = 0
        self.misses = 0

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (e.g. between differently-shaped workloads)."""
        self._buffers.clear()
        self._owned.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace(dtype={self.dtype.name}, buffers={self.num_buffers}, "
            f"bytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )
