"""Dtype policy: float32 compute with float64 accumulation, opt-in.

The engine's default discipline is float64 end to end (``repro.checks``
rule DT002 polices accidental downcasts).  On CPU, though, the FCNN's
matmuls are bandwidth/SIMD bound and run roughly twice as fast in float32,
and the paper's reconstruction quality target (~30-40 dB SNR) sits far
above float32's ~7 decimal digits.  A :class:`DtypePolicy` makes the
trade-off explicit and *opt-in*:

* ``compute`` — dtype of activations, weights and gradients inside the
  network (``float32`` or ``float64``).
* accumulation stays float64 regardless: losses upcast predictions before
  reduction (:meth:`repro.nn.Loss._check`), and reconstruction outputs are
  denormalized into float64 fields, so epoch losses, SNR and every
  downstream metric are accumulated at full precision.

The default policy is ``float64`` — a no-op that keeps the fast path
bit-identical to the allocating path.  Select per run via
``ExperimentConfig(dtype_policy="float32")`` or
``FCNNReconstructor(dtype_policy="float32")``.

Checkpoint interplay: ``resume_from=`` restores float64 state; resuming
under a float32 policy casts the restored weights down, so bit-exact
resume is only guaranteed with the policy off (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DtypePolicy"]

#: dtype names a policy accepts
_ALLOWED = ("float64", "float32")


@dataclass(frozen=True)
class DtypePolicy:
    """Compute-dtype selection for the fast path; ``float64`` is the identity."""

    compute: str = "float64"

    def __post_init__(self) -> None:
        if self.compute not in _ALLOWED:
            raise ValueError(
                f"dtype policy must be one of {_ALLOWED}, got {self.compute!r}"
            )

    @property
    def compute_dtype(self) -> np.dtype:
        return np.dtype(self.compute)

    @property
    def enabled(self) -> bool:
        """True when the policy changes anything (compute is not float64)."""
        return self.compute != "float64"

    def cast_model(self, model) -> None:
        """Cast a :class:`repro.nn.Sequential`'s parameters to the compute dtype.

        In-place on each :class:`~repro.nn.Parameter`: ``value`` and
        ``grad`` are replaced by casts, keeping identity of the Parameter
        objects (optimizers built *after* the cast pick up matching moment
        dtypes).  A float64 policy is a no-op.
        """
        if not self.enabled:
            return
        dt = self.compute_dtype
        for p in model.parameters():
            if p.value.dtype != dt:
                p.value = p.value.astype(dt)
            if p.grad.dtype != dt:
                p.grad = p.grad.astype(dt)
