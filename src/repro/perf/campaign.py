# hot-path
"""Streaming campaign scheduler: pipelined sample -> fine-tune -> reconstruct.

The paper's Fig 11 campaign processes a stream of timesteps; the seed
implementation ran every stage sequentially and rebuilt all per-timestep
machinery (process pools, kd-trees, model copies) from scratch each step.
This module overlaps the stages and keeps everything warm:

* :class:`CampaignScheduler` — a 3-stage software pipeline.  Timestep
  ``t+1`` is *materialized* (simulated/loaded + sampled) on a prefetch
  thread while the caller's thread *processes* (fine-tunes on) timestep
  ``t`` and a single FIFO emit thread *reconstructs* timestep ``t-1``.
  Fine-tuning stays strictly sequential — model state flows from timestep
  to timestep — so results are **bit-identical** to the serial schedule;
  only side-effect-free work (I/O, sampling, reconstruction of already
  published weights) overlaps.
* :class:`WarmReconstructionPool` — persistent reconstruction workers fed
  through one shared-memory slot ring.  Grid geometry and base model
  weights ship **once per campaign** (counter
  ``campaign.shm_bundles_created``); each fine-tuned timestep afterwards
  publishes only a bitwise XOR weight delta (:mod:`repro.perf.weights`)
  and the refreshed sample values.  Workers cache the kd-tree, neighbor
  indices and rebuilt models across timesteps.
* :class:`LocalReconstructionSink` — the same publish/reconstruct
  protocol executed in-process; the degradation target when shared memory
  is unavailable and the reference implementation the pool is tested
  bit-identical against.
* :class:`CampaignGeometry` / :class:`GeometryCache` — sampled-location
  geometry (void indices/points, sample positions, content hash) computed
  once and shared by every stage and worker via lightweight
  :class:`~repro.sampling.base.SampledField` shells.

Bit-identity contract: worker chunk boundaries are aligned to the FCNN
predict block (``max(batch_size, 16384)``), so the matmul block shapes —
and therefore every float — match the serial
:meth:`~repro.core.reconstructor.FCNNReconstructor.reconstruct` exactly;
weight deltas are XOR (exact); the non-finite nearest-neighbor fallback is
replicated with the serial path's tree and counters.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from queue import Empty, Full, Queue

import numpy as np

from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import record_event, span
from repro.parallel.chunking import aligned_chunks
from repro.parallel.executor import ParallelExecutor
from repro.perf import shm as _shm
from repro.perf.shm import SharedArrayBundle
from repro.perf.weights import apply_weight_delta, restore_weights, snapshot_weights, weight_delta
from repro.resilience.report import ReconstructionReport
from repro.resilience.supervise import CampaignInterrupted
from repro.sampling.base import SampledField

__all__ = [
    "CampaignGeometry",
    "GeometryCache",
    "CampaignScheduler",
    "CampaignStats",
    "WarmReconstructionPool",
    "LocalReconstructionSink",
    "make_reconstruction_sink",
    "geometry_key",
]

#: Poll period for stop-aware blocking queue/semaphore operations.
_POLL_SECONDS = 0.05

#: Per-process cap on cached worker states (bundle attachments + models).
_WORKER_STATE_MAX = 4


# --------------------------------------------------------------------------
# geometry


def geometry_key(grid, indices: np.ndarray) -> str:
    """Content hash of a sampled-location set on a grid.

    Two samples with the same grid and the same kept indices share all
    derived geometry (void set, positions, kd-tree) regardless of their
    values or which objects hold them — this key identifies that
    equivalence class for :class:`GeometryCache`.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((grid.dims, grid.spacing, grid.origin)).encode())
    h.update(np.ascontiguousarray(np.asarray(indices, dtype=np.int64)).tobytes())
    return h.hexdigest()


class CampaignGeometry:
    """Frozen sampled-location geometry shared across a campaign's timesteps.

    Holds everything derivable from *where* the samples are (not what
    values they carry): sorted flat indices, sample positions, the void
    index/position arrays.  :meth:`shell` stamps out cheap
    :class:`SampledField` views that share the cached void arrays by
    object identity — which keeps the
    :class:`~repro.core.FeatureExtractor` neighbor-index memo hot across
    timesteps — and :meth:`refresh` overwrites a shell's values in place
    from a new timestep's field.
    """

    def __init__(self, grid, indices: np.ndarray, fraction: float) -> None:
        self.grid = grid
        indices = np.asarray(indices, dtype=np.int64)
        self.indices = np.sort(indices)
        self.fraction = float(fraction)
        self.key = geometry_key(grid, self.indices)
        # A template shell computes (and caches) the void geometry once.
        template = SampledField(
            grid=grid,
            indices=self.indices,
            values=np.zeros(self.indices.size, dtype=np.float64),
            fraction=self.fraction,
        )
        self._void_indices = template.void_indices()
        self._void_points = template.void_points()
        self._points: np.ndarray | None = None

    @classmethod
    def from_sample(cls, sample: SampledField) -> "CampaignGeometry":
        return cls(sample.grid, sample.indices, sample.fraction)

    # ----------------------------------------------------------------- sizes
    @property
    def num_samples(self) -> int:
        return int(self.indices.size)

    @property
    def num_voids(self) -> int:
        return int(self._void_indices.size)

    @property
    def void_indices(self) -> np.ndarray:
        return self._void_indices

    @property
    def void_points(self) -> np.ndarray:
        return self._void_points

    @property
    def points(self) -> np.ndarray:
        """Sample positions ``(M, 3)`` (cached; read-only by convention)."""
        if self._points is None:
            self._points = self.grid.index_to_position(
                self.grid.flat_to_multi(self.indices)
            )
        return self._points

    # ---------------------------------------------------------------- shells
    def shell(self, values: np.ndarray | None = None, timestep: int = 0) -> SampledField:
        """A :class:`SampledField` over this geometry sharing the cached voids.

        The returned shell's ``values`` array is freshly owned (safe to
        :meth:`refresh` in place); its void index/point arrays are the
        geometry's cached objects, so feature-extractor geometry memos keyed
        on array identity survive value updates.  Each pipeline stage that
        mutates values must use its **own** shell — in-place refreshes on a
        shared shell would race between overlapped stages.
        """
        if values is None:
            values = np.zeros(self.num_samples, dtype=np.float64)
        shell = SampledField(
            grid=self.grid,
            indices=self.indices,
            values=np.asarray(values, dtype=np.float64),
            fraction=self.fraction,
            timestep=int(timestep),
        )
        object.__setattr__(shell, "_void_indices", self._void_indices)
        object.__setattr__(shell, "_void_points", self._void_points)
        return shell

    def refresh(self, shell: SampledField, field) -> SampledField:
        """Overwrite ``shell``'s values in place from ``field`` at the frozen locations."""
        np.take(field.flat, shell.indices, out=shell.values)
        return shell


class GeometryCache:
    """Content-addressed LRU cache of :class:`CampaignGeometry` objects.

    Re-running a campaign (or reconstructing several models against the
    same sample locations) reuses the void enumeration, positions and the
    kd-trees hanging off the cached arrays instead of recomputing them per
    timestep.  Eviction is least-recently-used (a hit refreshes the
    entry), and the cache key folds in the caller's compute dtype so
    fast32 and fast64 runs over the same locations can never alias one
    entry.  Counters: ``campaign.geometry.hits`` / ``.misses``; gauges
    ``campaign.geometry.hit_count`` / ``.miss_count``.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple[str, str], CampaignGeometry] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, sample: SampledField, dtype: str = "float64") -> CampaignGeometry:
        """The cached geometry for ``sample``'s locations (building it on miss).

        ``dtype`` is the caller's compute-dtype policy (for example
        ``reconstructor.dtype_policy.compute``); it is part of the cache
        key, not of the construction, so mixed-precision runs get
        distinct entries instead of aliasing each other's geometry.
        """
        key = (geometry_key(sample.grid, sample.indices), str(dtype))
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            obs_counter("campaign.geometry.hits").inc()
            obs_gauge("campaign.geometry.hit_count").set(self._hits)
            return cached
        self._misses += 1
        obs_counter("campaign.geometry.misses").inc()
        obs_gauge("campaign.geometry.miss_count").set(self._misses)
        geometry = CampaignGeometry.from_sample(sample)
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[key] = geometry
        return geometry

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------------------
# scheduler


@dataclass
class CampaignStats:
    """Wall-clock accounting of one :meth:`CampaignScheduler.run`."""

    timesteps: int
    pipeline: bool
    wall_seconds: float
    prefetch_seconds: float
    process_seconds: float
    emit_seconds: float

    def occupancy(self, stage: str) -> float:
        """Fraction of the run's wall time ``stage`` spent busy (0..1+)."""
        busy = {
            "prefetch": self.prefetch_seconds,
            "process": self.process_seconds,
            "emit": self.emit_seconds,
        }[stage]
        return busy / self.wall_seconds if self.wall_seconds > 0 else 0.0


class _Stop(Exception):
    """Internal: a stage was asked to stop mid-wait."""


_DONE = object()


class CampaignScheduler:
    """Three-stage streaming pipeline over a sequence of timesteps.

    Parameters
    ----------
    materialize:
        ``fn(timestep) -> item`` — produce/load + sample the timestep.
        Runs on the prefetch thread (one timestep ahead); must be free of
        order-dependent side effects (the analytic datasets and the
        samplers' stateless per-(seed, timestep) RNG qualify).
    process:
        ``fn(timestep, item) -> payload`` — fine-tune / mutate shared
        model state.  Runs on the **calling** thread, strictly in timestep
        order, exactly as in the serial schedule.
    emit:
        Optional ``fn(timestep, payload) -> result`` — reconstruct/score/
        write output.  Runs on a single FIFO emit thread; payloads must be
        self-contained snapshots (published weights + values), never live
        references into state ``process`` keeps mutating.
    pipeline:
        ``False`` runs the three stages inline in one loop — the serial
        reference schedule.  Results are bit-identical either way.
    depth:
        Emit backpressure: at most ``depth`` payloads may be completed-by-
        process-but-not-yet-emitted at once.  Sinks with a slot ring need
        ``slots >= depth + 1`` (one slot may still be publishing while
        ``depth`` wait/emit).
    interrupt:
        Optional :class:`repro.resilience.supervise.GracefulInterrupt`
        (or any object with a boolean ``triggered`` attribute).  Checked
        between timesteps: once triggered, the scheduler finishes the
        current timestep, drains every in-flight emit (their journal
        records stay durable), then raises
        :class:`~repro.resilience.supervise.CampaignInterrupted` naming
        the completed prefix and the resume point.  Results are never
        emitted out of order or dropped mid-stage.

    Error handling: an exception in any stage stops the pipeline, waits
    for in-flight stage calls to finish, and re-raises the original
    exception — a failed campaign never silently drops a timestep, and
    every result it *does* return was produced in order.

    Observability: spans ``campaign.prefetch`` / ``campaign.finetune`` /
    ``campaign.reconstruct`` per timestep (each thread's spans form their
    own tree roots — see :class:`repro.obs.SpanTracker`), occupancy
    gauges ``campaign.occupancy.{prefetch,finetune,reconstruct}`` and the
    ``campaign.timesteps`` counter; :attr:`stats` keeps the same numbers.
    """

    def __init__(
        self,
        materialize,
        process,
        emit=None,
        *,
        pipeline: bool = True,
        depth: int = 1,
        name: str = "campaign",
        interrupt=None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.materialize = materialize
        self.process = process
        self.emit = emit
        self.pipeline = bool(pipeline)
        self.depth = int(depth)
        self.name = str(name)
        self.interrupt = interrupt
        self.stats: CampaignStats | None = None

    def _interrupted(self) -> bool:
        return self.interrupt is not None and bool(self.interrupt.triggered)

    def _raise_interrupted(self, steps: list[int], done: int) -> None:
        record_event(
            "campaign.interrupted",
            completed=done,
            total=len(steps),
            next_timestep=steps[done] if done < len(steps) else None,
        )
        raise CampaignInterrupted(
            f"campaign interrupted after {done}/{len(steps)} timesteps",
            completed=tuple(steps[:done]),
            next_timestep=steps[done] if done < len(steps) else None,
        )

    # ------------------------------------------------------------------ run
    def run(self, timesteps) -> list:
        """Process every timestep; returns per-timestep emit results in order."""
        steps = [int(t) for t in timesteps]
        wall0 = time.perf_counter()
        busy = {"prefetch": 0.0, "process": 0.0, "emit": 0.0}
        if not steps:
            results: list = []
        elif self.pipeline:
            results = self._run_pipelined(steps, busy)
        else:
            results = self._run_serial(steps, busy)
        wall = time.perf_counter() - wall0
        self.stats = CampaignStats(
            timesteps=len(steps),
            pipeline=self.pipeline,
            wall_seconds=wall,
            prefetch_seconds=busy["prefetch"],
            process_seconds=busy["process"],
            emit_seconds=busy["emit"],
        )
        obs_counter("campaign.timesteps").inc(len(steps))
        obs_gauge("campaign.occupancy.prefetch").set(self.stats.occupancy("prefetch"))
        obs_gauge("campaign.occupancy.finetune").set(self.stats.occupancy("process"))
        obs_gauge("campaign.occupancy.reconstruct").set(self.stats.occupancy("emit"))
        return results

    def _run_serial(self, steps: list[int], busy: dict) -> list:
        results = []
        for t in steps:
            if self._interrupted():
                self._raise_interrupted(steps, len(results))
            t0 = time.perf_counter()
            with span("campaign.prefetch", timestep=t):
                item = self.materialize(t)
            t1 = time.perf_counter()
            busy["prefetch"] += t1 - t0
            with span("campaign.finetune", timestep=t):
                payload = self.process(t, item)
            t2 = time.perf_counter()
            busy["process"] += t2 - t1
            with span("campaign.reconstruct", timestep=t):
                results.append(self.emit(t, payload) if self.emit is not None else payload)
            busy["emit"] += time.perf_counter() - t2
        return results

    # -------------------------------------------------------- pipelined mode
    def _run_pipelined(self, steps: list[int], busy: dict) -> list:
        n = len(steps)
        results: list = [None] * n
        fetch_q: Queue = Queue(maxsize=1)
        emit_q: Queue = Queue()
        slots = threading.Semaphore(self.depth)
        stop = threading.Event()
        errors: list[tuple[str, int, BaseException]] = []
        err_lock = threading.Lock()
        # busy and results are written from three threads (prefetcher,
        # caller, emitter); dict/list item writes are not atomic under
        # free-threaded builds, so every cross-thread write takes this.
        stats_lock = threading.Lock()

        def fail(stage: str, t: int, exc: BaseException) -> None:
            with err_lock:
                errors.append((stage, t, exc))
            stop.set()

        def prefetch_loop() -> None:
            t = steps[0]
            try:
                for i, t in enumerate(steps):
                    if stop.is_set():
                        return
                    t0 = time.perf_counter()
                    with span("campaign.prefetch", timestep=t):
                        item = self.materialize(t)
                    with stats_lock:
                        busy["prefetch"] += time.perf_counter() - t0
                    _stoppable_put(fetch_q, (i, t, item), stop)
            except _Stop:
                return
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                fail("materialize", t, exc)

        def emit_loop() -> None:
            while True:
                msg = emit_q.get()
                if msg is _DONE:
                    return
                i, t, payload = msg
                try:
                    t0 = time.perf_counter()
                    with span("campaign.reconstruct", timestep=t):
                        out = self.emit(t, payload) if self.emit is not None else payload
                    with stats_lock:
                        results[i] = out
                        busy["emit"] += time.perf_counter() - t0
                except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                    fail("emit", t, exc)
                    return
                finally:
                    # Release *after* the work: backpressure counts in-flight
                    # emits, not merely dequeued ones.
                    slots.release()

        prefetcher = threading.Thread(
            target=prefetch_loop, name=f"{self.name}-prefetch", daemon=True
        )
        emitter = threading.Thread(target=emit_loop, name=f"{self.name}-emit", daemon=True)
        prefetcher.start()
        emitter.start()
        cut: int | None = None
        try:
            for k in range(n):
                if self._interrupted():
                    # Stop pulling new timesteps; already-queued emits for
                    # processed timesteps still drain below, in order.
                    cut = k
                    break
                i, t, item = _stoppable_get(fetch_q, stop)
                t0 = time.perf_counter()
                with span("campaign.finetune", timestep=t):
                    payload = self.process(t, item)
                with stats_lock:
                    busy["process"] += time.perf_counter() - t0
                _stoppable_acquire(slots, stop)
                emit_q.put((i, t, payload))
        except _Stop:
            pass
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            fail("process", t, exc)
        finally:
            emit_q.put(_DONE)
            emitter.join()
            stop.set()  # release a prefetcher blocked on a full fetch queue
            _drain(fetch_q)
            prefetcher.join()
        if errors:
            stage, t, exc = errors[0]
            exc.args = exc.args if exc.args else (f"campaign {stage} stage failed",)
            record_event("campaign.failed", stage=stage, timestep=t, error=type(exc).__name__)
            raise exc
        if cut is not None:
            self._raise_interrupted(steps, cut)
        return results


def _stoppable_put(q: Queue, item, stop: threading.Event) -> None:
    while True:
        try:
            q.put(item, timeout=_POLL_SECONDS)
            return
        except Full:
            if stop.is_set():
                raise _Stop from None


def _stoppable_get(q: Queue, stop: threading.Event):
    while True:
        try:
            return q.get(timeout=_POLL_SECONDS)
        except Empty:
            if stop.is_set():
                raise _Stop from None


def _stoppable_acquire(sem: threading.Semaphore, stop: threading.Event) -> None:
    while not sem.acquire(timeout=_POLL_SECONDS):
        if stop.is_set():
            raise _Stop


def _drain(q: Queue) -> None:
    while True:
        try:
            q.get_nowait()
        except Empty:
            return


# --------------------------------------------------------------------------
# reconstruction sinks


def _predict_block(reconstructor) -> int:
    """The FCNN predict block size — chunk boundaries must align to it."""
    return max(reconstructor.batch_size, 16384)


# The aligned chunking contract lives in repro.parallel.chunking now (the
# shard decomposer shares it); the private name stays importable for its
# long-standing users.
_aligned_chunks = aligned_chunks


def _nonfinite_fallback(
    pred: np.ndarray,
    sample_points: np.ndarray,
    sample_values: np.ndarray,
    query_points: np.ndarray,
    report: ReconstructionReport,
) -> np.ndarray:
    """Replicate the serial nearest-neighbor degradation for non-finite predictions.

    Same tree (built over the same sample positions), same counters
    (``reconstruct.fcnn.fallback``) and the same ``degraded`` event as
    :meth:`FCNNReconstructor._healthy_predictions`, so a pipelined campaign
    degrades bit-identically to — and is as observable as — a serial one.
    """
    bad = ~np.isfinite(pred)
    count = int(bad.sum())
    if count == 0:
        return pred
    from scipy.spatial import cKDTree

    pred = pred.copy()
    _, nearest = cKDTree(sample_points).query(query_points[bad], k=1)
    pred[bad] = sample_values[nearest]
    report.flag(
        len(report.degraded),
        count,
        f"{count}/{pred.size} non-finite FCNN prediction(s)",
        "nearest",
    )
    obs_counter("reconstruct.fcnn.fallback").inc(count)
    record_event("degraded", where="fcnn.predict", count=count, fallback="nearest")
    return pred


class LocalReconstructionSink:
    """In-process publish/reconstruct sink — the pool's serial twin.

    Implements the same protocol as :class:`WarmReconstructionPool`
    (:meth:`bind` once, then :meth:`publish` a timestep's values + weight
    vectors and :meth:`reconstruct` it later) without processes or shared
    memory: published state is copied into a local slot ring and
    reconstruction runs on per-tag model clones through the ordinary
    :meth:`FCNNReconstructor.reconstruct` path.  It is the reference the
    pool is verified bit-identical against, and the automatic fallback
    when shared memory is unavailable.
    """

    def __init__(self, slots: int = 2) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        self.geometry: CampaignGeometry | None = None
        self._models: dict = {}
        self._values: np.ndarray | None = None
        self._flats: list[dict[str, np.ndarray]] = []
        self._timesteps: list[int | None] = []
        self._shells: dict = {}
        self._seq = 0

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(self._models)

    def bind(self, geometry: CampaignGeometry, models: dict) -> None:
        """Install the campaign geometry and clone each tagged model once."""
        self.geometry = geometry
        self._models = {tag: model.clone() for tag, model in models.items()}
        self._values = np.zeros((self.slots, geometry.num_samples), dtype=np.float64)
        self._flats = [{} for _ in range(self.slots)]
        self._timesteps = [None] * self.slots
        self._shells = {tag: geometry.shell() for tag in self._models}
        self._seq = 0

    def publish(self, timestep: int, values: np.ndarray, weights: dict) -> int:
        """Copy one timestep's sample values + per-tag flat weights into a slot."""
        if self.geometry is None:
            raise RuntimeError("sink is not bound; call bind() first")
        if set(weights) != set(self._models):
            raise ValueError(
                f"publish needs weights for every bound tag {sorted(self._models)}, "
                f"got {sorted(weights)}"
            )
        slot = self._seq % self.slots
        self._seq += 1
        self._values[slot][...] = values
        self._flats[slot] = {
            tag: np.array(flat, dtype=np.float64, copy=True) for tag, flat in weights.items()
        }
        self._timesteps[slot] = int(timestep)
        return slot

    def reconstruct(
        self, slot: int, tag: str, on_nonfinite: str = "fallback"
    ) -> tuple[np.ndarray, ReconstructionReport]:
        """Reconstruct the full field for one published slot and model tag."""
        model = self._models[tag]
        restore_weights(model.model, self._flats[slot][tag])
        shell = self._shells[tag]
        shell.values[...] = self._values[slot]
        return model.reconstruct(shell, on_nonfinite=on_nonfinite, return_report=True)

    def close(self) -> None:
        self._models = {}
        self._shells = {}
        self.geometry = None

    def __enter__(self) -> "LocalReconstructionSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class WarmReconstructionPool:
    """Persistent worker pool reconstructing campaign timesteps via shared memory.

    One :class:`~repro.perf.shm.SharedArrayBundle` per campaign carries

    ========================  =====================================================
    ``indices``               ``(M,)`` sampled flat indices — shipped once
    ``values``                ``(slots, M)`` per-slot sample values
    ``weights_base``          ``(T, W)`` base flat weights per tag — shipped once
    ``weights_delta``         ``(slots, T, W)`` XOR deltas against the base
    ``out``                   ``(slots, T, K)`` per-slot void predictions
    ========================  =====================================================

    so after :meth:`bind` no task payload ever contains an array — workers
    receive ``(campaign id, epoch, slot, tag, chunk bounds)`` plus a small
    static init block, attach the segments once, and keep the rebuilt
    models, kd-tree and per-chunk neighbor indices warm in module state
    across every timestep (counter ``campaign.shm_bundles_created`` proves
    geometry + weights ship at most once per campaign).

    The executor is a ``persistent=True``
    :class:`~repro.parallel.ParallelExecutor`: crashed workers get the
    PR 2 recovery semantics (BrokenProcessPool -> serial in-process
    re-run of the unresolved chunks, then pool recycle), so a killed
    worker degrades a timestep gracefully instead of dropping it.

    Slot discipline: :meth:`publish` assigns slots round-robin; a slot's
    contents stay valid until ``slots`` further publishes.  Drive the pool
    from a :class:`CampaignScheduler` with ``depth <= slots - 1``.
    """

    def __init__(
        self,
        executor: ParallelExecutor | None = None,
        max_workers: int | None = None,
        num_chunks: int | None = None,
        slots: int = 2,
        worker_fn=None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else ParallelExecutor(
            max_workers=max_workers, retries=1, persistent=True
        )
        self.num_chunks = num_chunks
        #: Task function run in workers; overridable for fault injection.
        self.worker_fn = worker_fn if worker_fn is not None else _campaign_worker
        self.campaign_id = uuid.uuid4().hex
        self.epoch = -1
        self.geometry: CampaignGeometry | None = None
        self._bundle: SharedArrayBundle | None = None
        self._tags: tuple[str, ...] = ()
        self._base: dict[str, np.ndarray] = {}
        self._chunks: dict[str, list[tuple[int, int]]] = {}
        self._init: dict = {}
        self._timesteps: list[int | None] = []
        self._seq = 0

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    # ----------------------------------------------------------------- bind
    def bind(self, geometry: CampaignGeometry, models: dict) -> None:
        """Ship geometry + base weights to shared memory (once per campaign).

        ``models`` maps tag -> trained :class:`FCNNReconstructor`.  Raises
        ``OSError`` when shared memory is unavailable — callers degrade to
        :class:`LocalReconstructionSink` (see
        :func:`make_reconstruction_sink`).
        """
        self.unbind()
        tags = tuple(models)
        if not tags:
            raise ValueError("bind needs at least one tagged model")
        metas = {}
        base = {}
        for tag, model in models.items():
            network, normalizer = model._require_trained()
            flat = snapshot_weights(network).data
            base[tag] = np.array(flat, dtype=np.float64, copy=True)
            metas[tag] = {
                "ctor": {
                    "hidden_layers": model.hidden_layers,
                    "num_neighbors": model.extractor.num_neighbors,
                    "include_gradients": model.extractor.include_gradients,
                    "learning_rate": model.learning_rate,
                    "batch_size": model.batch_size,
                    "gradient_loss_weight": model.gradient_loss_weight,
                    "seed": model.seed,
                    "fast_path": model.fast_path,
                    "dtype_policy": model.dtype_policy.compute,
                },
                "spec": network.spec(),
                "normalizer": normalizer.as_dict(),
                "num_weights": int(flat.size),
            }
            self._chunks[tag] = _aligned_chunks(
                geometry.num_voids, self._target_chunks(), _predict_block(model)
            )
        width = max(meta["num_weights"] for meta in metas.values())
        base_matrix = np.zeros((len(tags), width), dtype=np.float64)
        for ti, tag in enumerate(tags):
            base_matrix[ti, : base[tag].size] = base[tag]
        self._bundle = SharedArrayBundle.create(
            {
                "indices": geometry.indices,
                "values": np.zeros((self.slots, geometry.num_samples), dtype=np.float64),
                "weights_base": base_matrix,
                "weights_delta": np.zeros((self.slots, len(tags), width), dtype=np.uint64),
                "out": np.zeros((self.slots, len(tags), geometry.num_voids), dtype=np.float64),
            }
        )
        obs_counter("campaign.shm_bundles_created").inc()
        self.epoch += 1
        self.geometry = geometry
        self._tags = tags
        self._base = base
        self._timesteps = [None] * self.slots
        self._seq = 0
        self._init = {
            "specs": self._bundle.specs,
            "grid": geometry.grid,
            "fraction": geometry.fraction,
            "tags": tags,
            "models": metas,
        }

    def _target_chunks(self) -> int:
        if self.num_chunks is not None:
            return int(self.num_chunks)
        return max(1, self.executor.max_workers)

    # -------------------------------------------------------------- publish
    def publish(self, timestep: int, values: np.ndarray, weights: dict) -> int:
        """Write one timestep's sample values + per-tag weight deltas to a slot.

        ``weights`` maps every bound tag to its current flat weight vector
        (:func:`repro.perf.weights.snapshot_weights` ``.data``); only the
        XOR delta against the base crosses into shared memory.
        """
        if self._bundle is None:
            raise RuntimeError("pool is not bound; call bind() first")
        if set(weights) != set(self._tags):
            raise ValueError(
                f"publish needs weights for every bound tag {sorted(self._tags)}, "
                f"got {sorted(weights)}"
            )
        slot = self._seq % self.slots
        self._seq += 1
        self._bundle.view("values")[slot][...] = values
        delta_view = self._bundle.view("weights_delta")
        for ti, tag in enumerate(self._tags):
            flat = np.asarray(weights[tag], dtype=np.float64)
            delta_view[slot, ti, : flat.size] = weight_delta(self._base[tag], flat)
        self._timesteps[slot] = int(timestep)
        return slot

    # ---------------------------------------------------------- reconstruct
    def reconstruct(
        self, slot: int, tag: str, on_nonfinite: str = "fallback"
    ) -> tuple[np.ndarray, ReconstructionReport]:
        """Reconstruct the full field for one published slot and model tag.

        Chunks fan out to the warm workers; predictions land in the shared
        ``out`` slot and are assembled (sample overlay + void fill + the
        serial path's non-finite fallback) in the parent.  Raises the first
        chunk failure only after the executor's retry + serial-fallback
        recovery is exhausted.
        """
        if self._bundle is None or self.geometry is None:
            raise RuntimeError("pool is not bound; call bind() first")
        if on_nonfinite not in ("fallback", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'fallback' or 'raise', got {on_nonfinite!r}"
            )
        geometry = self.geometry
        ti = self._tags.index(tag)
        chunks = self._chunks[tag]
        payloads = [
            {
                "campaign": self.campaign_id,
                "epoch": self.epoch,
                "init": self._init,
                "slot": int(slot),
                "tag": tag,
                "tag_index": ti,
                "start": start,
                "stop": stop,
            }
            for start, stop in chunks
        ]
        report = ReconstructionReport(
            total_points=int(geometry.grid.num_points), fallback_method="nearest"
        )
        with span(
            "campaign.pool.reconstruct",
            tag=tag,
            chunks=len(payloads),
            timestep=self._timesteps[slot],
        ):
            outcomes = self.executor.map_outcomes(self.worker_fn, payloads)
            obs_counter("campaign.pool.chunks").inc(len(payloads))
            for outcome in outcomes:
                if outcome.recovered is not None:
                    obs_counter("campaign.pool.recovered").inc()
                    record_event(
                        "campaign.chunk_recovered",
                        tag=tag,
                        chunk=outcome.index,
                        how=outcome.recovered,
                    )
                if not outcome.ok:
                    if outcome.exception is not None:
                        raise outcome.exception
                    raise RuntimeError(
                        f"campaign chunk {outcome.index} ({tag}) failed: {outcome.error}"
                    )
            values = self._bundle.view("values")[slot]
            pred = np.array(self._bundle.view("out")[slot, ti], copy=True)
            if not np.isfinite(pred).all():
                if on_nonfinite == "raise":
                    from repro.resilience.health import NumericalHealthError

                    count = int((~np.isfinite(pred)).sum())
                    raise NumericalHealthError(
                        f"FCNN produced {count}/{pred.size} non-finite predictions; "
                        "the model state is numerically poisoned"
                    )
                pred = _nonfinite_fallback(
                    pred, geometry.points, values, geometry.void_points, report
                )
            out = geometry.grid.empty_field().ravel()
            out[geometry.indices] = values
            out[geometry.void_indices] = pred
            return out.reshape(geometry.grid.dims), report

    # -------------------------------------------------------------- teardown
    def unbind(self) -> None:
        """Release the current campaign's shared segments (keeps the executor)."""
        bundle, self._bundle = self._bundle, None
        if bundle is not None:
            bundle.close()
        # Parent-side worker state (from serial in-process fallbacks) for the
        # released epoch is now stale — drop it.
        _evict_worker_state(self.campaign_id)
        self.geometry = None
        self._tags = ()
        self._base = {}
        self._chunks = {}
        self._init = {}

    def close(self) -> None:
        """Unbind and shut down the owned executor (idempotent)."""
        self.unbind()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "WarmReconstructionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def make_reconstruction_sink(
    geometry: CampaignGeometry,
    models: dict,
    *,
    executor: ParallelExecutor | None = None,
    max_workers: int | None = None,
    num_chunks: int | None = None,
    slots: int = 2,
    warm_pool: bool = True,
):
    """Bind the best available reconstruction sink for this environment.

    Tries a :class:`WarmReconstructionPool` (shared memory + persistent
    workers); environments without usable shared memory — or callers
    passing ``warm_pool=False`` — get a :class:`LocalReconstructionSink`.
    Both speak the same publish/reconstruct protocol and produce
    bit-identical fields.
    """
    if warm_pool:
        pool = WarmReconstructionPool(
            executor=executor, max_workers=max_workers, num_chunks=num_chunks, slots=slots
        )
        try:
            pool.bind(geometry, models)
            return pool
        except OSError:
            pool.close()
            record_event("campaign.pool_unavailable", fallback="local")
        except BaseException:
            # bind() failures beyond "no usable shm" are real errors, but
            # the half-bound pool still owns segments and workers — release
            # them before propagating or they outlive the test/run.
            pool.close()
            raise
    sink = LocalReconstructionSink(slots=slots)
    sink.bind(geometry, models)
    return sink


# --------------------------------------------------------------------------
# worker side


class _WorkerState:
    """Per-process warm state for one (campaign, epoch): attachments + models."""

    def __init__(self, payload: dict) -> None:
        from scipy.spatial import cKDTree

        from repro.core.normalization import Normalizer
        from repro.core.reconstructor import FCNNReconstructor
        from repro.nn.network import from_spec

        init = payload["init"]
        self.handles: list = []
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for name, spec in init["specs"].items():
                shm = _shm._attach(spec.shm_name)
                self.handles.append(shm)
                self.arrays[name] = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
                )
        except BaseException:
            # A failure between attach and first read must not leak the
            # already-opened mappings: drop the views, close every handle.
            self.arrays.clear()
            for shm in self.handles:
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - view still alive
                    pass
            self.handles.clear()
            raise
        indices = np.array(self.arrays["indices"], dtype=np.int64, copy=True)
        self.geometry = CampaignGeometry(init["grid"], indices, init["fraction"])
        self.sample = self.geometry.shell()
        self.tree = cKDTree(self.geometry.points)
        self.models: dict[str, FCNNReconstructor] = {}
        self.num_weights: dict[str, int] = {}
        self.scratch: dict[str, np.ndarray] = {}
        for tag in init["tags"]:
            meta = init["models"][tag]
            recon = FCNNReconstructor(**meta["ctor"])
            recon.model = from_spec(meta["spec"])
            recon.dtype_policy.cast_model(recon.model)
            recon.normalizer = Normalizer.from_dict(meta["normalizer"])
            self.models[tag] = recon
            self.num_weights[tag] = int(meta["num_weights"])
            self.scratch[tag] = np.empty(meta["num_weights"], dtype=np.float64)
        self._slabs: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    def slab(self, start: int, stop: int, num_neighbors: int, workers: int):
        """Cached ``(query positions, neighbor indices)`` for one chunk.

        Neighbor indices replicate :meth:`FeatureExtractor._neighbor_indices`
        exactly (same tree data, same query, same padding) so priming the
        extractor memo with them is bit-identical to letting it query.
        """
        key = (start, stop, num_neighbors)
        cached = self._slabs.get(key)
        if cached is not None:
            return cached
        from repro.core.features import TIE_BREAK_PAD, canonical_neighbors

        points = self.geometry.void_points[start:stop]
        k = min(num_neighbors, self.geometry.num_samples)
        kq = min(k + TIE_BREAK_PAD, self.geometry.num_samples)
        dist, idx = self.tree.query(points, k=kq, workers=workers)
        if kq == 1:
            dist, idx = dist[:, None], idx[:, None]
        idx = canonical_neighbors(dist, idx, k)
        if k < num_neighbors:
            pad = np.repeat(idx[:, -1:], num_neighbors - k, axis=1)
            idx = np.concatenate([idx, pad], axis=1)
        self._slabs[key] = (points, idx)
        return points, idx

    def close(self) -> None:
        self.arrays.clear()
        self._slabs.clear()
        for shm in self.handles:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass
        self.handles = []


#: (campaign id, epoch) -> warm state.  Module-level so pooled workers (and
#: the in-process serial fallback) keep attachments/models across tasks.
_WORKER_STATE: dict[tuple[str, int], _WorkerState] = {}


def _evict_worker_state(campaign: str, keep_epoch: int | None = None) -> None:
    for key in [k for k in _WORKER_STATE if k[0] == campaign and k[1] != keep_epoch]:
        _WORKER_STATE.pop(key).close()


def _worker_state(payload: dict) -> _WorkerState:
    key = (payload["campaign"], payload["epoch"])
    state = _WORKER_STATE.get(key)
    if state is not None:
        return state
    # A new epoch of a campaign invalidates its older attachments.
    _evict_worker_state(payload["campaign"], keep_epoch=payload["epoch"])
    while len(_WORKER_STATE) >= _WORKER_STATE_MAX:
        _WORKER_STATE.pop(next(iter(_WORKER_STATE))).close()
    state = _WorkerState(payload)
    _WORKER_STATE[key] = state
    return state


def _campaign_worker(payload: dict) -> int:
    """Reconstruct one (slot, tag, chunk) into the shared ``out`` segment.

    Runs in pool workers (or in-process on the executor's serial fallback).
    Decodes the slot's XOR weight delta into the warm model, refreshes the
    warm sample shell's values in place, primes the feature extractor's
    neighbor memo from the per-chunk cache and predicts the chunk — every
    step bit-identical to the serial predict path.
    """
    state = _worker_state(payload)
    slot = int(payload["slot"])
    tag = payload["tag"]
    ti = int(payload["tag_index"])
    start, stop = int(payload["start"]), int(payload["stop"])
    recon = state.models[tag]
    w = state.num_weights[tag]

    flat = apply_weight_delta(
        state.arrays["weights_base"][ti, :w],
        state.arrays["weights_delta"][slot, ti, :w],
        out=state.scratch[tag],
    )
    restore_weights(recon.model, flat)
    state.sample.values[...] = state.arrays["values"][slot]

    extractor = recon.extractor
    points, idx = state.slab(start, stop, extractor.num_neighbors, extractor.workers)
    if extractor.cache_geometry:
        extractor._cached_sample = state.sample
        extractor._cached_tree = state.tree
        extractor._cached_query = points
        extractor._cached_idx = idx
    state.arrays["out"][slot, ti, start:stop] = recon.predict_values(
        state.sample, points, state.geometry.grid
    )
    return stop - start
