"""repro.perf — the performance subsystem: fast paths that change nothing else.

Independent pieces, all opt-in and all preserving the engine's numerics
(see ``docs/PERFORMANCE.md`` for design and measurements):

* :class:`Workspace` — a preallocated buffer arena that makes the
  ``Dense``/``ReLU`` forward-backward loop, the optimizer step and chunked
  FCNN inference allocation-free in steady state, bit-identical to the
  allocating path.  Attach to a network with
  :meth:`repro.nn.Sequential.attach_workspace` or pass ``workspace=`` to
  :class:`repro.nn.Trainer`.
* :class:`DtypePolicy` — explicit float32-compute/float64-accumulate
  selection (default ``float64`` = off).  The only sanctioned float32 in
  the numerics; everything downstream of the network still accumulates in
  float64.
* :class:`SharedArrayBundle` / :func:`attached_arrays` — POSIX
  shared-memory transport that ships sampled points, queries and results
  to ``parallel_reconstruct`` workers as segment names instead of pickled
  arrays.
* :mod:`repro.perf.weights` — flat weight snapshots and bit-exact XOR
  weight deltas (:func:`snapshot_weights`, :func:`weight_delta`, ...).
* :mod:`repro.perf.campaign` — the streaming campaign scheduler:
  :class:`CampaignScheduler` pipelines sample -> fine-tune -> reconstruct
  across timesteps, :class:`WarmReconstructionPool` keeps reconstruction
  workers warm behind one shared-memory slot ring, and
  :class:`GeometryCache` shares void geometry across timesteps.
  (Imported lazily: :mod:`repro.core` imports this package, and the
  campaign module imports :mod:`repro.core` back.)

``BENCH_perf.json`` / ``BENCH_campaign.json`` (written by the benchmark
suite) record the measured speedups; the CI ``perf`` and ``campaign``
jobs keep them from regressing via ``repro obs report --diff
--fail-on-regression``.
"""

from repro.perf.policy import DtypePolicy
from repro.perf.shm import SharedArrayBundle, SharedArraySpec, attached_arrays
from repro.perf.weights import (
    WeightSnapshot,
    apply_weight_delta,
    restore_weights,
    snapshot_weights,
    weight_delta,
)
from repro.perf.workspace import Workspace

__all__ = [
    "Workspace",
    "DtypePolicy",
    "SharedArrayBundle",
    "SharedArraySpec",
    "attached_arrays",
    "WeightSnapshot",
    "snapshot_weights",
    "restore_weights",
    "weight_delta",
    "apply_weight_delta",
    "CampaignGeometry",
    "GeometryCache",
    "CampaignScheduler",
    "CampaignStats",
    "WarmReconstructionPool",
    "LocalReconstructionSink",
    "make_reconstruction_sink",
]

_CAMPAIGN_EXPORTS = frozenset(
    {
        "CampaignGeometry",
        "GeometryCache",
        "CampaignScheduler",
        "CampaignStats",
        "WarmReconstructionPool",
        "LocalReconstructionSink",
        "make_reconstruction_sink",
        "geometry_key",
    }
)


def __getattr__(name: str):
    # Lazy re-export breaking the repro.core <-> repro.perf import cycle.
    if name in _CAMPAIGN_EXPORTS:
        from repro.perf import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
