"""repro.perf — the performance subsystem: fast paths that change nothing else.

Three independent pieces, all opt-in and all preserving the engine's
numerics (see ``docs/PERFORMANCE.md`` for design and measurements):

* :class:`Workspace` — a preallocated buffer arena that makes the
  ``Dense``/``ReLU`` forward-backward loop, the optimizer step and chunked
  FCNN inference allocation-free in steady state, bit-identical to the
  allocating path.  Attach to a network with
  :meth:`repro.nn.Sequential.attach_workspace` or pass ``workspace=`` to
  :class:`repro.nn.Trainer`.
* :class:`DtypePolicy` — explicit float32-compute/float64-accumulate
  selection (default ``float64`` = off).  The only sanctioned float32 in
  the numerics; everything downstream of the network still accumulates in
  float64.
* :class:`SharedArrayBundle` / :func:`attached_arrays` — POSIX
  shared-memory transport that ships sampled points, queries and results
  to ``parallel_reconstruct`` workers as segment names instead of pickled
  arrays.

``BENCH_perf.json`` (written by ``benchmarks/test_bench_perf_fastpath.py``)
records the measured speedups; the CI ``perf`` job keeps them from
regressing via ``repro obs report --diff --fail-on-regression``.
"""

from repro.perf.policy import DtypePolicy
from repro.perf.shm import SharedArrayBundle, SharedArraySpec, attached_arrays
from repro.perf.workspace import Workspace

__all__ = [
    "Workspace",
    "DtypePolicy",
    "SharedArrayBundle",
    "SharedArraySpec",
    "attached_arrays",
]
