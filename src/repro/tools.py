"""File-based workflow commands behind the CLI.

Each function implements one ``repro <command>`` operating on VTK XML
files, making the library usable as a standalone tool on real data:

* ``generate``    — materialize a synthetic dataset timestep as ``.vti``;
* ``sample``      — reduce a ``.vti`` to a sampled ``.vtp`` point cloud;
* ``train``       — train an FCNN from a ``.vti`` + its ``.vtp`` samples;
* ``reconstruct`` — rebuild a full ``.vti`` from a ``.vtp`` with any method;
* ``evaluate``    — score a reconstruction against the original;
* ``render``      — project a ``.vti`` to a PGM image for quick inspection;
* ``campaign``    — run a multi-timestep in situ campaign to a directory
  (optionally pipelined; see :mod:`repro.perf.campaign`).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core import FCNNReconstructor
from repro.datasets import make_dataset
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid
from repro.interpolation import make_interpolator
from repro.io import read_vti, write_vti
from repro.metrics import score_reconstruction
from repro.sampling import (
    GradientImportanceSampler,
    HistogramImportanceSampler,
    MultiCriteriaSampler,
    RandomSampler,
    SampledField,
    StratifiedSampler,
)

__all__ = [
    "cmd_generate",
    "cmd_sample",
    "cmd_train",
    "cmd_reconstruct",
    "cmd_evaluate",
    "cmd_render",
    "cmd_campaign",
    "SAMPLERS",
]

SAMPLERS = {
    "multicriteria": MultiCriteriaSampler,
    "random": RandomSampler,
    "stratified": StratifiedSampler,
    "histogram": HistogramImportanceSampler,
    "gradient": GradientImportanceSampler,
}


def _load_field(path: str | Path, array: str | None = None) -> tuple[UniformGrid, str, np.ndarray]:
    grid, data = read_vti(path)
    if not data:
        raise ValueError(f"{path}: no point-data arrays")
    name = array if array is not None else next(iter(data))
    if name not in data:
        raise ValueError(f"{path}: no array {name!r}; available: {sorted(data)}")
    values = data[name]
    if values.ndim != 3:
        raise ValueError(f"{path}: array {name!r} is not a scalar volume")
    return grid, name, values


def cmd_generate(dataset: str, output: str, dims=None, timestep: int = 0, seed: int = 0) -> str:
    """Write one timestep of a synthetic dataset as ``.vti``."""
    data = make_dataset(dataset, dims=tuple(dims) if dims else None, seed=seed)
    field = data.field(t=timestep)
    write_vti(output, field.grid, {data.attribute: field.values})
    return f"wrote {output}: {data.attribute} on {field.grid.describe()} (t={timestep})"


def cmd_sample(
    input_vti: str,
    output_vtp: str,
    fraction: float,
    sampler: str = "multicriteria",
    array: str | None = None,
    seed: int = 0,
) -> str:
    """Reduce a ``.vti`` volume to a sampled ``.vtp`` point cloud."""
    if sampler not in SAMPLERS:
        raise ValueError(f"unknown sampler {sampler!r}; available: {sorted(SAMPLERS)}")
    grid, name, values = _load_field(input_vti, array)
    field = TimestepField(grid, values, timestep=0, name=name)
    sampled = SAMPLERS[sampler](seed=seed).sample(field, fraction)
    sampled.to_vtp(output_vtp)
    return (
        f"wrote {output_vtp}: {sampled.num_samples} points "
        f"({sampled.achieved_fraction:.2%} of {grid.num_points})"
    )


def cmd_train(
    input_vti: str,
    model_out: str,
    fractions: tuple[float, ...] = (0.01, 0.05),
    sampler: str = "multicriteria",
    array: str | None = None,
    epochs: int = 150,
    hidden: tuple[int, ...] = (128, 64, 32, 16),
    seed: int = 0,
    checkpoint: str | None = None,
    checkpoint_every: int = 25,
    resume: bool = False,
    health_policy: str = "rollback",
) -> str:
    """Train an FCNN on samples drawn from a full-resolution ``.vti``.

    With ``checkpoint`` a training checkpoint is written there every
    ``checkpoint_every`` epochs; ``resume=True`` continues a previously
    interrupted run from that checkpoint bit-exactly.  ``health_policy``
    guards each epoch against NaN/Inf (empty string disables the guard).
    """
    from repro.resilience import CheckpointConfig, HealthGuard
    from repro.resilience.checkpoint import normalize_npz_path

    grid, name, values = _load_field(input_vti, array)
    field = TimestepField(grid, values, timestep=0, name=name)
    s = SAMPLERS[sampler](seed=seed)
    train = [s.sample(field, f) for f in fractions]

    ckpt_config = resume_from = None
    if checkpoint is not None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        ckpt_config = CheckpointConfig(path=checkpoint, every=checkpoint_every)
        if resume:
            resume_from = str(normalize_npz_path(checkpoint))
            if not Path(resume_from).exists():
                raise FileNotFoundError(f"--resume: no checkpoint at {resume_from}")
    elif resume:
        raise ValueError("--resume needs --checkpoint <path> to resume from")

    health = HealthGuard(health_policy) if health_policy else None
    model = FCNNReconstructor(hidden_layers=tuple(hidden), seed=seed)
    t0 = time.perf_counter()
    model.train(
        field,
        train,
        epochs=epochs,
        checkpoint=ckpt_config,
        resume_from=resume_from,
        health=health,
    )
    seconds = time.perf_counter() - t0
    model.save(model_out)
    resumed = f" (resumed from {resume_from})" if resume_from else ""
    return (
        f"wrote {model_out}: trained {epochs} epochs in {seconds:.1f}s{resumed}, "
        f"final loss {model.history.train_loss[-1]:.5f}"
    )


def cmd_reconstruct(
    input_vtp: str,
    reference_vti: str,
    output_vti: str,
    method: str = "linear",
    model: str | None = None,
    array: str = "scalar",
) -> str:
    """Rebuild a full volume from a ``.vtp`` cloud.

    ``reference_vti`` supplies the target grid geometry (its data is not
    consulted).  ``method`` is an interpolator name, or ``"fcnn"`` with
    ``model`` pointing at a trained checkpoint.
    """
    grid = read_vti(reference_vti)[0]
    sample = SampledField.from_vtp(input_vtp, grid)

    if method == "fcnn":
        if model is None:
            raise ValueError("method 'fcnn' needs --model <checkpoint.npz>")
        reconstructor = FCNNReconstructor.load(model)
    else:
        reconstructor = make_interpolator(method)

    t0 = time.perf_counter()
    volume = reconstructor.reconstruct(sample)
    seconds = time.perf_counter() - t0
    write_vti(output_vti, grid, {array: volume})
    return f"wrote {output_vti}: reconstructed with {method} in {seconds:.2f}s"


def cmd_evaluate(original_vti: str, reconstructed_vti: str, array: str | None = None) -> str:
    """Score a reconstruction against the original volume."""
    grid_a, name, original = _load_field(original_vti, array)
    grid_b, _, recon = _load_field(reconstructed_vti, None)
    if grid_a != grid_b:
        raise ValueError("original and reconstruction live on different grids")
    score = score_reconstruction(original, recon)
    parts = [f"{k}={v:.4f}" for k, v in score.as_dict().items()]
    return f"{reconstructed_vti} vs {original_vti} [{name}]: " + ", ".join(parts)


def cmd_render(
    input_vti: str,
    output_pgm: str,
    mode: str = "mip",
    axis: int = 2,
    array: str | None = None,
) -> str:
    """Project a volume to a PGM image (mip / mean / slice)."""
    from repro.vis import average_projection, max_intensity_projection, slice_field, write_pgm

    grid, name, values = _load_field(input_vti, array)
    if mode == "mip":
        image = max_intensity_projection(grid, values, axis=axis)
    elif mode == "mean":
        image = average_projection(grid, values, axis=axis)
    elif mode == "slice":
        image = slice_field(grid, values, axis=axis)
    else:
        raise ValueError(f"unknown render mode {mode!r} (mip, mean, slice)")
    write_pgm(output_pgm, image)
    return f"wrote {output_pgm}: {mode} of {name} along axis {axis} ({image.shape[0]}x{image.shape[1]})"


def cmd_campaign(
    output_dir: str,
    dataset: str = "combustion",
    dims=None,
    timesteps=(0, 4, 8, 12),
    fraction: float = 0.03,
    sampler: str = "multicriteria",
    train: bool = False,
    fractions=(0.01, 0.05),
    epochs: int = 100,
    finetune_epochs: int = 10,
    seed: int = 0,
    pipeline: bool = True,
    batched_finetune: bool = False,
    finetune_batch: int = 0,
    shards=None,
    halo: int | None = None,
    journal: bool = False,
    resume: bool = False,
) -> str:
    """Run a multi-timestep in situ campaign into ``output_dir``.

    Writes one sampled ``.vtp`` per timestep (plus FCNN checkpoints when
    ``train``) under a ``manifest.json`` + ``campaign.pvd`` index.  With
    ``pipeline`` the simulate/sample, train and write stages overlap on
    the :class:`repro.perf.CampaignScheduler`; the on-disk campaign is
    identical either way.

    ``shards`` (an ``AxBxC`` spec or a plain shard count, with ``train``)
    decomposes the domain spatially: each timestep after the base is
    fine-tuned per shard on its ``halo``-extended box and emits one
    Case-2 checkpoint per (timestep, shard); the reader stitches them.

    ``journal`` keeps a durable write-ahead journal under
    ``output_dir/.wal/``; ``resume`` (implies ``journal``) skips the
    journal-verified completed prefix and finishes the campaign
    byte-identically to an uninterrupted run.  SIGTERM/SIGINT interrupt
    the run gracefully: in-flight timesteps drain, the journal flushes a
    resume manifest, and the exit reports how to continue.
    """
    if sampler not in SAMPLERS:
        raise ValueError(f"unknown sampler {sampler!r}; available: {sorted(SAMPLERS)}")
    from repro.insitu import InSituWriter
    from repro.resilience.supervise import CampaignInterrupted, GracefulInterrupt

    data = make_dataset(dataset, dims=tuple(dims) if dims else None, seed=seed)
    writer = InSituWriter(
        data,
        SAMPLERS[sampler](seed=seed),
        fraction,
        train_model=train,
        train_fractions=tuple(fractions),
        epochs=epochs,
        finetune_epochs=finetune_epochs,
        batched_finetune=batched_finetune,
        finetune_batch=finetune_batch,
        shards=shards,
        halo=halo,
    )
    t0 = time.perf_counter()
    journal = journal or resume
    try:
        if journal:
            with GracefulInterrupt() as interrupt:
                manifest = writer.run(
                    output_dir, timesteps, pipeline=pipeline,
                    journal=True, resume=resume, interrupt=interrupt,
                )
        else:
            manifest = writer.run(output_dir, timesteps, pipeline=pipeline)
    except CampaignInterrupted as exc:
        return (
            f"campaign {output_dir} interrupted: {len(exc.completed)} further "
            f"timestep(s) completed and journaled; "
            f"re-run with --resume to continue from timestep {exc.next_timestep}"
        )
    seconds = time.perf_counter() - t0
    checkpoints = len(manifest.model_files) + sum(
        len(v) for v in manifest.shard_model_files.values()
    )
    trained = f", {checkpoints} model checkpoint(s)" if train else ""
    batched = ", batched fine-tune" if batched_finetune else ""
    sharded = (
        f", shards {'x'.join(map(str, manifest.shards))} halo {manifest.halo}"
        if manifest.shards is not None
        else ""
    )
    resumed = " (resumed)" if resume else ""
    return (
        f"wrote campaign {output_dir}: {len(manifest.timesteps)} timestep(s) "
        f"at {fraction:.2%}{trained} in {seconds:.2f}s "
        f"(pipeline {'on' if pipeline else 'off'}{batched}{sharded}){resumed}"
    )
