"""repro — reproduction of "Filling the Void" (Biswas et al., SC 2024).

Data-driven machine-learning reconstruction of aggressively sampled
spatiotemporal scientific simulation data, plus every substrate the paper
depends on: synthetic simulation datasets, multi-criteria importance
sampling, classical point-cloud interpolators, a numpy neural-network
engine, VTK XML I/O, metrics, a parallel-execution layer and an experiment
harness regenerating every table and figure in the paper's evaluation.

Beyond the paper's surface, the repo carries its own production substrate:
``repro.resilience`` (checkpoint/resume, health guards, fault injection),
``repro.obs`` (span timers, metrics, JSONL run records — see
``docs/OBSERVABILITY.md``), ``repro.checks`` (AST static analysis of the
numerical invariants), plus ``repro.vis``/``repro.analysis`` evaluation
consumers, ``repro.compression`` (the competing reduction path) and
``repro.insitu`` campaign simulation.  ``docs/API.md`` tours every package
with a runnable example.

Quickstart::

    from repro.datasets import HurricaneDataset
    from repro.sampling import MultiCriteriaSampler
    from repro.core import FCNNReconstructor
    from repro.metrics import snr

    data = HurricaneDataset(grid=HurricaneDataset.default_grid().with_resolution((60, 60, 16)))
    field = data.field(t=0)
    sampler = MultiCriteriaSampler(seed=7)
    train = [sampler.sample(field, 0.01), sampler.sample(field, 0.05)]

    model = FCNNReconstructor(hidden_layers=(64, 32, 16))
    model.train(field, train, epochs=40)

    test = sampler.sample(field, 0.02)
    volume = model.reconstruct(test)
    print("SNR:", snr(field.values, volume))
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "checks",
    "compression",
    "core",
    "datasets",
    "experiments",
    "grid",
    "insitu",
    "interpolation",
    "io",
    "metrics",
    "nn",
    "obs",
    "parallel",
    "resilience",
    "sampling",
    "serve",
    "shard",
    "vis",
]
