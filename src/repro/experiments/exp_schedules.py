"""Extension experiment — learning-rate-schedule ablation.

The paper trains with a constant Adam lr of 0.001.  This ablation checks
whether the repo's schedules (step decay, exponential, cosine, warmup)
change the quality/epoch trade-off at a fixed epoch budget — the relevant
question for the paper-profile 500-epoch runs, where a decayed tail is the
cheapest way to raise the FCNN's SNR ceiling.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr
from repro.nn import (
    Adam,
    ConstantSchedule,
    CosineAnnealingSchedule,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    Trainer,
    WarmupSchedule,
    apply_schedule,
)

__all__ = ["run"]


def _schedules(lr: float, epochs: int) -> dict:
    return {
        "constant": ConstantSchedule(lr),
        "step/2@40%": StepDecaySchedule(lr, step_size=max(1, int(0.4 * epochs)), factor=0.5),
        "exponential": ExponentialDecaySchedule(lr, decay=0.99),
        "cosine": CosineAnnealingSchedule(lr, total_epochs=epochs, lr_min=lr / 100),
        "warmup+cosine": WarmupSchedule(
            CosineAnnealingSchedule(lr, total_epochs=epochs, lr_min=lr / 100),
            warmup_epochs=max(1, epochs // 20),
        ),
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Train the same FCNN under each schedule and compare SNR."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="ext-lr-schedules",
        notes={"profile": config.profile, "dims": config.dims, "epochs": config.epochs},
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    train = [pipeline.sample(field, f) for f in config.train_fractions]
    samples = test_samples(pipeline, field, config.test_fractions, config)

    for label, schedule in _schedules(config.learning_rate, config.epochs).items():
        fcnn = build_reconstructor(config)
        # Assemble training data through the public train() path once to
        # build model + normalizer, then continue with a scheduled Trainer.
        fcnn.train(field, train, epochs=0)
        normalizer = fcnn.normalizer
        rng = np.random.default_rng(config.seed)
        x, y = fcnn._training_matrix(field, train, normalizer, 1.0, rng)

        optimizer = Adam(fcnn.model.parameters(), lr=schedule(0))
        trainer = Trainer(
            fcnn.model,
            loss=fcnn._loss(),
            optimizer=optimizer,
            batch_size=config.batch_size,
            seed=config.seed,
        )
        history = trainer.fit(
            x, y, epochs=config.epochs, callback=apply_schedule(optimizer, schedule)
        )

        snrs = [snr(field.values, fcnn.reconstruct(s)) for s in samples.values()]
        record = {
            "schedule": label,
            "avg_snr": float(np.mean(snrs)),
            "final_loss": history.train_loss[-1],
            "final_lr": optimizer.lr,
        }
        result.rows.append(record)
        result.series.setdefault("avg_snr", []).append((label, record["avg_snr"]))
    return result


if __name__ == "__main__":
    print(run().format())
