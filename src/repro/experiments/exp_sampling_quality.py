"""Fig 9 — reconstruction quality (SNR) vs sampling percentage.

For each dataset: train one FCNN on the 1%+5% union, then reconstruct
samples at every test percentage with the FCNN and every rule-based method,
scoring SNR against the original field.  The paper's reading: FCNN
generally highest; linear and natural neighbor close behind (linear pulling
ahead as sampling grows); Shepard and nearest consistently lowest.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.interpolation import make_interpolator

__all__ = ["run"]

#: rule-based methods drawn in Fig 9
RULE_METHODS = ("linear", "natural", "shepard", "nearest")


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = ("hurricane", "combustion", "ionization"),
    include_rbf: bool = False,
    include_global_shepard: bool = False,
) -> ExperimentResult:
    """Regenerate Fig 9.

    ``include_rbf`` adds the method the paper benchmarked then excluded for
    cost; ``include_global_shepard`` adds the original Shepard method the
    paper's modified variant improves upon.
    """
    config = config or get_config()
    methods = list(RULE_METHODS)
    if include_rbf:
        methods.append("rbf")
    if include_global_shepard:
        methods.append("shepard-global")
    result = ExperimentResult(
        experiment="fig09-sampling-quality",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "epochs": config.epochs,
            "train_fractions": config.train_fractions,
        },
    )

    for name in datasets:
        pipeline = build_pipeline(config, dataset=name)
        fcnn = build_reconstructor(config)
        pipeline.train_fcnn(fcnn, epochs=config.epochs)
        field = pipeline.field(0)

        samples = test_samples(pipeline, field, config.test_fractions, config)
        for fraction, sample in samples.items():
            for method_name in ["fcnn"] + methods:
                method = fcnn if method_name == "fcnn" else make_interpolator(method_name)
                res = pipeline.run_method(method, sample, field)
                result.rows.append(
                    {
                        "dataset": name,
                        "method": method_name,
                        "fraction": fraction,
                        "snr": res.score.snr,
                        "rmse": res.score.rmse,
                    }
                )
                result.series.setdefault(f"{name}/{method_name}", []).append(
                    (fraction, res.score.snr)
                )
    return result


if __name__ == "__main__":
    print(run().format())
