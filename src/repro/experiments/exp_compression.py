"""Extension experiment — sampling+reconstruction vs lossy compression.

The systems question behind the paper's Sec II pointer to Di et al. [24]:
given the same storage budget, is it better to (a) keep an importance
sample and reconstruct with the FCNN/linear interpolation, or (b) compress
the whole field with an error-bounded compressor?

For each sampling fraction the sampled ``.vtp`` payload size is computed
(positions + values, the paper's storage format), then the SZ-style
compressor's error bound is binary-searched until its artifact matches
that byte budget; both reconstructions are scored.

Expected shape (the known result in this literature): at equal storage,
whole-field compression wins on pointwise SNR for smooth fields — sampling
instead buys *exact* values at chosen points and feature-adaptive storage.
The experiment quantifies the gap rather than assuming it.
"""

from __future__ import annotations

import numpy as np

from repro.compression import SZCompressor
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.interpolation import make_interpolator
from repro.metrics import snr

__all__ = ["run", "sample_storage_bytes", "compress_to_budget"]

#: bytes per stored sample point: float32 x/y/z + float32 value (the
#: tightest reasonable .vtp encoding)
BYTES_PER_SAMPLE = 16


def sample_storage_bytes(num_samples: int) -> int:
    """Storage cost of a sampled point cloud."""
    return num_samples * BYTES_PER_SAMPLE


def compress_to_budget(grid, values, budget_bytes: int, max_iter: int = 40):
    """Binary-search a relative error bound whose artifact fits the budget.

    Returns ``(reconstruction, artifact)`` for the tightest bound that
    fits (or the loosest tried, if even that overshoots).
    """
    lo, hi = 1e-8, 0.5
    best = None
    for _ in range(max_iter):
        mid = np.sqrt(lo * hi)  # geometric bisection over error bounds
        artifact = SZCompressor(error_bound=mid, mode="relative").compress(grid, values)
        if artifact.nbytes <= budget_bytes:
            best = artifact
            hi = mid  # fits: try a tighter bound
        else:
            lo = mid  # too big: loosen
        if hi / lo < 1.05:
            break
    if best is None:
        best = SZCompressor(error_bound=hi, mode="relative").compress(grid, values)
    return best.decompress(), best


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the equal-storage comparison."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="ext-sampling-vs-compression",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "bytes_per_sample": BYTES_PER_SAMPLE,
        },
    )

    pipeline = build_pipeline(config)
    fcnn = build_reconstructor(config)
    pipeline.train_fcnn(fcnn, epochs=config.epochs)
    field = pipeline.field(0)
    linear = make_interpolator("linear")

    samples = test_samples(pipeline, field, config.test_fractions, config)
    for fraction, sample in samples.items():
        budget = sample_storage_bytes(sample.num_samples)
        comp_recon, artifact = compress_to_budget(field.grid, field.values, budget)

        record = {
            "fraction": fraction,
            "budget_bytes": budget,
            "compressed_bytes": artifact.nbytes,
            "error_bound": artifact.error_bound,
            "snr_fcnn": snr(field.values, fcnn.reconstruct(sample)),
            "snr_linear": snr(field.values, linear.reconstruct(sample)),
            "snr_compression": snr(field.values, comp_recon),
        }
        result.rows.append(record)
        for key in ("snr_fcnn", "snr_linear", "snr_compression"):
            result.series.setdefault(key, []).append((fraction, record[key]))
    return result


if __name__ == "__main__":
    print(run().format())
