"""ASCII table/series rendering for experiment results."""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def format_table(rows: list[dict]) -> str:
    """Render dict records as an aligned ASCII table (union of keys)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(line, widths)) for line in cells)
    return "\n".join([header, rule, body])


def format_series(series: dict, x_name: str = "x") -> str:
    """Render ``{label: [(x, y), ...]}`` curves one label per block."""
    lines = []
    for label, points in series.items():
        lines.append(f"[{label}]")
        for x, y in points:
            lines.append(f"  {x_name}={_fmt(x)}  ->  {_fmt(y)}")
    return "\n".join(lines)
