"""Fig 12 — loss progression: full training vs fine-tuning.

Pretrains on one timestep (recording the full-training loss curve), then
fine-tunes on a later timestep (recording the fine-tuning curve).  A third
curve — a *from-scratch* model trained on the fine-tune timestep for the
same short budget — isolates the transfer advantage: the fine-tuned model
must start far below where a fresh model starts on the same data, because
field statistics (and hence raw MSE scale) legitimately differ between
timesteps.  Expected shape: full training descends over hundreds of
epochs; fine-tuning starts below from-scratch and converges within ~10
epochs.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 12."""
    config = config or get_config()
    timesteps = tuple(config.timesteps)
    t_train = timesteps[0]
    t_tune = timesteps[len(timesteps) // 2]

    result = ExperimentResult(
        experiment="fig12-loss-curves",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "train_timestep": t_train,
            "finetune_timestep": t_tune,
        },
    )

    pipeline = build_pipeline(config)
    fcnn = build_reconstructor(config)
    pipeline.train_fcnn(fcnn, timestep=t_train, epochs=config.epochs)
    full = list(fcnn.history.train_loss)

    field = pipeline.field(t_tune)
    train = [pipeline.sample(field, f) for f in config.train_fractions]
    budget = max(config.finetune_epochs, 10)
    tune = fcnn.fine_tune(field, train, epochs=budget, strategy="full").train_loss

    # From-scratch reference on the same timestep and budget: what training
    # would cost without the pretrained weights.  NOTE: raw loss values of
    # the two short runs are NOT directly comparable — fine-tuning keeps the
    # pretraining normalizer while from-scratch fits its own, so each MSE
    # lives in a different normalization space.  The transfer advantage is
    # therefore also reported in (scale-free) reconstruction SNR.
    scratch_model = build_reconstructor(config)
    scratch = scratch_model.train(field, train, epochs=budget).train_loss

    from repro.experiments.runner import test_samples
    from repro.metrics import snr

    test = test_samples(pipeline, field, (config.timestep_fraction,), config)[
        config.timestep_fraction
    ]
    snr_ft = snr(field.values, fcnn.reconstruct(test))
    snr_scratch = snr(field.values, scratch_model.reconstruct(test))
    result.notes["snr_finetuned"] = snr_ft
    result.notes["snr_from_scratch"] = snr_scratch

    result.series["full-training"] = list(enumerate(full))
    result.series["fine-tuning"] = list(enumerate(tune))
    result.series["from-scratch@tune"] = list(enumerate(scratch))
    for phase, series, s in (
        ("full-training", full, None),
        ("fine-tuning", tune, snr_ft),
        ("from-scratch@tune", scratch, snr_scratch),
    ):
        row = {
            "phase": phase,
            "epochs": len(series),
            "first_loss": series[0],
            "last_loss": series[-1],
        }
        if s is not None:
            row["snr_at_tune_t"] = s
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().format())
