"""Experiment harness: one runner per table/figure of the paper.

Every runner takes an :class:`~repro.experiments.config.ExperimentConfig`
(scaled-down CPU defaults; ``profile="paper"`` approaches the paper's
settings), returns a structured :class:`~repro.experiments.runner.ExperimentResult`
and can print the same rows/series the paper reports.

| Paper item | Runner |
|---|---|
| Fig 6  | :func:`repro.experiments.exp_layers.run` |
| Fig 7  | :func:`repro.experiments.exp_train_mix.run` |
| Fig 8  | :func:`repro.experiments.exp_gradient_ablation.run` |
| Fig 9  | :func:`repro.experiments.exp_sampling_quality.run` |
| Fig 10 | :func:`repro.experiments.exp_sampling_time.run` |
| Fig 11 | :func:`repro.experiments.exp_timesteps.run` |
| Fig 12 | :func:`repro.experiments.exp_loss_curves.run` |
| Fig 13 | :func:`repro.experiments.exp_upscaling.run` |
| Fig 14 + Table II | :func:`repro.experiments.exp_training_subset.run` |
| Table I | :func:`repro.experiments.exp_training_time.run` |
| Fig 5 Case 1/2 | :func:`repro.experiments.exp_finetune_cases.run` |
| ext: feature preservation | :func:`repro.experiments.exp_feature_preservation.run` |
| ext: uncertainty (deep ensembles) | :func:`repro.experiments.exp_uncertainty.run` |
| ext: sampler ablation | :func:`repro.experiments.exp_samplers.run` |
| ext: sampling vs compression | :func:`repro.experiments.exp_compression.run` |
| ext: LR-schedule ablation | :func:`repro.experiments.exp_schedules.run` |

Set ``ExperimentConfig.obs`` (CLI: ``--obs DIR``) to record each run's
telemetry — span timings, counters, a ``run.json`` manifest — under
``DIR/<experiment>`` via :func:`repro.experiments.runner.build_recorder`;
inspect with ``repro obs report`` (see ``docs/OBSERVABILITY.md``).
"""

from repro.experiments.config import ExperimentConfig, PROFILES
from repro.experiments.runner import ExperimentResult

__all__ = ["ExperimentConfig", "PROFILES", "ExperimentResult"]
