"""Shared experiment configuration and CPU/paper profiles.

The paper ran on a 64-core/2xA100 node at full dataset resolutions; this
reproduction runs anywhere, so experiment scale is a profile:

* ``quick``  — seconds-scale; used by the test suite.
* ``bench``  — minutes-scale; the default for ``benchmarks/`` and the CLI,
  small grids but enough training for the paper's qualitative shape.
* ``paper``  — the paper's architecture (512-16 hidden ladder), 500 epochs,
  larger grids and all 48 Isabel timesteps; hours-scale on one CPU.

All profiles exercise identical code paths; only sizes change.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ExperimentConfig", "PROFILES", "get_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner."""

    profile: str = "bench"
    dataset: str = "hurricane"
    #: grid resolution the dataset is materialized at
    dims: tuple[int, int, int] = (40, 40, 12)
    #: sampling percentages whose union trains the FCNN (paper: 1% + 5%)
    train_fractions: tuple[float, ...] = (0.01, 0.05)
    #: sampling percentages reconstructed at test time (paper: 0.1%..5%)
    test_fractions: tuple[float, ...] = (0.001, 0.005, 0.01, 0.02, 0.03, 0.05)
    #: FCNN hidden-layer widths
    hidden_layers: tuple[int, ...] = (128, 64, 32, 16)
    #: full-training epoch budget (paper: 500)
    epochs: int = 150
    #: Case-1 fine-tuning epochs (paper: ~10)
    finetune_epochs: int = 10
    #: Case-2 (last-two-layer) fine-tuning epochs (paper: 300-500)
    case2_epochs: int = 300
    batch_size: int = 4096
    learning_rate: float = 1e-3
    gradient_loss_weight: float = 0.1
    #: seed offset for test-time sample draws (independent of training draws)
    test_seed_offset: int = 1000
    num_neighbors: int = 5
    #: timesteps evaluated by the multi-timestep experiment (Fig 11)
    timesteps: tuple[int, ...] = tuple(range(0, 48, 4))
    #: sampling percentage used by the multi-timestep experiment (paper: 3%)
    timestep_fraction: float = 0.03
    #: per-axis upscale factor of the Fig 13 experiment
    upscale_factor: int = 2
    #: fractional domain shift of the upscaled grid (Fig 13)
    upscale_shift: tuple[float, float, float] = (0.15, 0.15, 0.0)
    #: numerical health-guard policy for FCNN training runs
    #: (see :class:`repro.resilience.HealthGuard`); "rollback" restores the
    #: last good epoch and halves the learning rate on NaN/Inf
    health_policy: str = "rollback"
    #: rollback retry budget before a run is declared unrecoverable
    health_max_retries: int = 3
    #: epochs between training checkpoints (0 disables checkpointing)
    checkpoint_every: int = 0
    #: directory for training checkpoints (None disables on-disk checkpoints)
    checkpoint_dir: str | None = None
    #: root directory for run telemetry (``repro.obs``); each experiment
    #: records JSONL events + a run.json manifest under ``<obs>/<name>``.
    #: None (the default) disables observability — instrumented code paths
    #: then cost a no-op call (see docs/OBSERVABILITY.md)
    obs: str | None = None
    #: route training/inference through the repro.perf workspace fast path
    #: (bit-identical to the slow path while ``dtype_policy`` is float64)
    fast_path: bool = True
    #: network compute dtype ("float64" keeps seed numerics; "float32"
    #: halves bandwidth at ~1e-7 relative error — see repro.perf.DtypePolicy)
    dtype_policy: str = "float64"
    #: overlap materialize/fine-tune/reconstruct across timesteps on the
    #: streaming CampaignScheduler (bit-identical to the serial schedule;
    #: False forces the serial loop — see docs/PERFORMANCE.md)
    campaign_pipeline: bool = True
    #: fine-tune campaign timesteps from the pretrained base through the
    #: fused repro.nn.batched engine instead of rolling weights forward
    #: (block-size invariant; changes the trajectory by design — see
    #: docs/TRAINING.md)
    batched_finetune: bool = False
    #: timesteps per fused fine-tune block with batched_finetune
    #: (0 = all timesteps in one block)
    finetune_batch: int = 0
    #: spatial domain decomposition for campaigns: an ``AxBxC`` spec, a
    #: plain shard count, or None (unsharded) — see repro.shard and
    #: docs/PERFORMANCE.md ("Shard-parallel campaigns")
    shards: str | tuple[int, int, int] | None = None
    #: halo/ghost-zone width in grid cells around each shard (None sizes
    #: it to the kNN stencil via repro.shard.suggest_halo)
    halo: int | None = None
    #: "global" reconstructs every shard with the timestep's one model
    #: (bit-identical to unsharded); "local" fine-tunes one model per
    #: (timestep, shard) on its halo-extended box (SNR parity)
    shard_scope: str = "global"
    seed: int = 7

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Copy with overridden fields."""
        return replace(self, **overrides)


PROFILES: dict[str, ExperimentConfig] = {
    "quick": ExperimentConfig(
        profile="quick",
        dims=(24, 24, 8),
        test_fractions=(0.01, 0.03),
        hidden_layers=(48, 24, 12),
        epochs=25,
        case2_epochs=40,
        timesteps=(0, 12, 24, 36),
        batch_size=2048,
    ),
    # The bench profile evaluates the timestep experiment at 1.5% rather
    # than the paper's 3%: the scaled-down FCNN's quality ceiling moves the
    # FCNN-vs-linear crossover to ~2% sampling (see EXPERIMENTS.md), and
    # the experiment's qualitative claims are probed below it.
    "bench": ExperimentConfig(timestep_fraction=0.015),
    "paper": ExperimentConfig(
        profile="paper",
        dims=(100, 100, 28),
        hidden_layers=(512, 256, 128, 64, 16),
        epochs=500,
        case2_epochs=400,
        timesteps=tuple(range(48)),
        test_fractions=(0.001, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05),
    ),
}


def get_config(profile: str = "bench", **overrides) -> ExperimentConfig:
    """Look up a profile and apply overrides."""
    try:
        cfg = PROFILES[profile]
    except KeyError:
        raise ValueError(f"unknown profile {profile!r}; available: {sorted(PROFILES)}") from None
    return cfg.scaled(**overrides) if overrides else cfg
