"""Fig 7 — effect of the training sampling percentage mix.

Trains three FCNNs on the Hurricane dataset — 1%-only, 5%-only, and the
1%+5% union — and evaluates SNR across the test percentages.  Expected
shape: the 1% model is good at sparse rates but flatlines as sampling
grows; the 5% model is the reverse; the union model is good at both ends
(the paper's adopted design).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import (
    ExperimentResult,
    build_health_guard,
    build_pipeline,
    build_reconstructor,
    test_samples,
)
from repro.metrics import snr

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 7."""
    config = config or get_config()
    lo, hi = config.train_fractions[0], config.train_fractions[-1]
    variants = {
        f"train@{lo:g}": (lo,),
        f"train@{hi:g}": (hi,),
        f"train@{lo:g}+{hi:g}": (lo, hi),
    }

    result = ExperimentResult(
        experiment="fig07-train-mix",
        notes={"profile": config.profile, "dims": config.dims, "epochs": config.epochs},
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    samples = test_samples(pipeline, field, config.test_fractions, config)

    for label, fractions in variants.items():
        fcnn = build_reconstructor(config)
        train = [pipeline.sample(field, f) for f in fractions]
        fcnn.train(field, train, epochs=config.epochs, health=build_health_guard(config))
        for fraction, sample in samples.items():
            value = snr(field.values, fcnn.reconstruct(sample))
            result.rows.append({"model": label, "fraction": fraction, "snr": value})
            result.series.setdefault(label, []).append((fraction, value))
    return result


if __name__ == "__main__":
    print(run().format())
