"""Fig 6 — average SNR vs number of hidden layers.

Trains FCNN variants with one to nine hidden layers on the Hurricane
dataset and reports each variant's SNR averaged over the test sampling
percentages.  Expected shape: quality rises from one layer, peaks around
five, and declines toward nine (under- vs over-fitting, Sec III-E).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run", "layer_ladder"]


def layer_ladder(num_layers: int, widths: tuple[int, ...]) -> tuple[int, ...]:
    """Hidden widths for an ``num_layers``-deep variant.

    Uses the configured ladder's leading entries, extending with its final
    width when deeper than the ladder (mirroring the paper's 512-16 taper).
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    ladder = list(widths)
    while len(ladder) < num_layers:
        ladder.append(ladder[-1])
    return tuple(ladder[:num_layers])


def run(
    config: ExperimentConfig | None = None,
    layer_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
) -> ExperimentResult:
    """Regenerate Fig 6."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="fig06-hidden-layers",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "epochs": config.epochs,
            "ladder": config.hidden_layers,
        },
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    samples = list(test_samples(pipeline, field, config.test_fractions, config).values())

    for n in layer_counts:
        hidden = layer_ladder(n, config.hidden_layers)
        fcnn = build_reconstructor(config, hidden_layers=hidden)
        pipeline.train_fcnn(fcnn, epochs=config.epochs)
        snrs = [snr(field.values, fcnn.reconstruct(s)) for s in samples]
        avg = float(np.mean(snrs))
        result.rows.append(
            {
                "hidden_layers": n,
                "widths": "x".join(str(w) for w in hidden),
                "avg_snr": avg,
                "train_seconds": fcnn.history.total_seconds,
            }
        )
        result.series.setdefault("avg_snr", []).append((n, avg))
    return result


if __name__ == "__main__":
    print(run().format())
