"""Extension experiment — how the sampling strategy shapes reconstruction.

The paper fixes the Biswas et al. [5] multi-criteria sampler after noting
it "showed good reconstruction quality" (Sec II) and states the FCNN is
sampling-method agnostic (Sec III-D).  This ablation makes both claims
measurable: every sampler (random, stratified, histogram-only,
gradient-only, multi-criteria, Poisson-disk) feeds the same FCNN and the
same linear baseline at a fixed aggressive sampling percentage.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor
from repro.interpolation import make_interpolator
from repro.metrics import snr
from repro.sampling import (
    GradientImportanceSampler,
    HistogramImportanceSampler,
    MultiCriteriaSampler,
    PoissonDiskSampler,
    RandomSampler,
    StratifiedSampler,
)

__all__ = ["run", "SAMPLER_FACTORIES"]

SAMPLER_FACTORIES = {
    "random": RandomSampler,
    "stratified": StratifiedSampler,
    "histogram": HistogramImportanceSampler,
    "gradient": GradientImportanceSampler,
    "multicriteria": MultiCriteriaSampler,
    "poisson": PoissonDiskSampler,
}


def run(
    config: ExperimentConfig | None = None,
    fraction: float = 0.01,
    samplers: tuple[str, ...] = tuple(SAMPLER_FACTORIES),
) -> ExperimentResult:
    """Run the sampler ablation at one sampling percentage."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="ext-sampler-ablation",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "fraction": fraction,
            "epochs": config.epochs,
        },
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    linear = make_interpolator("linear")

    for name in samplers:
        sampler = SAMPLER_FACTORIES[name](seed=config.seed)
        train = [sampler.sample(field, f) for f in config.train_fractions]
        test = sampler.sample(field, fraction, seed=config.seed + config.test_seed_offset)

        fcnn = build_reconstructor(config)
        fcnn.train(field, train, epochs=config.epochs)

        record = {
            "sampler": name,
            "fraction": fraction,
            "snr_fcnn": snr(field.values, fcnn.reconstruct(test)),
            "snr_linear": snr(field.values, linear.reconstruct(test)),
        }
        result.rows.append(record)
        result.series.setdefault("fcnn", []).append((name, record["snr_fcnn"]))
        result.series.setdefault("linear", []).append((name, record["snr_linear"]))
    return result


if __name__ == "__main__":
    print(run().format())
