"""Extension experiment — feature preservation under reconstruction.

The paper motivates importance sampling by downstream visualization:
isosurfaces and volume renderings must survive the sample/reconstruct trip
(Sec I).  This experiment quantifies that directly: for each method and
sampling percentage, compare the *original's* isosurface and value
distribution against the reconstruction's via

* isosurface IoU at a feature-selective isovalue (the hurricane eye's
  low-pressure region / the flame sheet / the ionization shell),
* isosurface area ratio (marching-tetrahedra meshes),
* histogram intersection,
* 3D SSIM.

Expected shape: the ranking of Fig 9 (FCNN >= linear > shepard > nearest)
carries over to the feature metrics.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.interpolation import make_interpolator
from repro.metrics import ssim3d
from repro.vis import extract_isosurface, histogram_intersection, isosurface_iou

__all__ = ["run", "feature_isovalue"]

METHODS = ("linear", "natural", "shepard", "nearest")


def feature_isovalue(values: np.ndarray, quantile: float = 0.1) -> float:
    """An isovalue that encloses the dataset's salient feature.

    The low quantile targets minima-features (hurricane eye, ionized
    cavity); for fields whose feature is a maximum the symmetric quantile
    would be used — the experiments only need *a* feature-selective level.
    """
    return float(np.quantile(values, quantile))


def run(
    config: ExperimentConfig | None = None,
    dataset: str | None = None,
    quantile: float = 0.1,
) -> ExperimentResult:
    """Run the feature-preservation comparison."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="ext-feature-preservation",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "dataset": dataset or config.dataset,
            "isovalue_quantile": quantile,
        },
    )

    pipeline = build_pipeline(config, dataset=dataset)
    fcnn = build_reconstructor(config)
    pipeline.train_fcnn(fcnn, epochs=config.epochs)
    field = pipeline.field(0)
    isovalue = feature_isovalue(field.values, quantile)
    result.notes["isovalue"] = isovalue
    reference_surface = extract_isosurface(field.grid, field.values, isovalue)

    samples = test_samples(pipeline, field, config.test_fractions, config)
    for fraction, sample in samples.items():
        for name in ("fcnn",) + METHODS:
            method = fcnn if name == "fcnn" else make_interpolator(name)
            volume = method.reconstruct(sample)
            surface = extract_isosurface(field.grid, volume, isovalue)
            ref_area = reference_surface.area()
            record = {
                "method": name,
                "fraction": fraction,
                "iso_iou": isosurface_iou(field.values, volume, isovalue),
                "area_ratio": surface.area() / ref_area if ref_area > 0 else float("nan"),
                "hist_isect": histogram_intersection(field.values, volume),
                "ssim": ssim3d(field.values, volume),
            }
            result.rows.append(record)
            result.series.setdefault(name, []).append((fraction, record["iso_iou"]))
    return result


if __name__ == "__main__":
    print(run().format())
