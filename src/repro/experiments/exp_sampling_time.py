"""Fig 10 — reconstruction time vs sampling percentage.

Times every method at every test percentage, including both Delaunay
implementations: the naive sequential Python loop (the paper's slow
baseline) and the vectorized one (standing in for the paper's C++/CGAL/
OpenMP build), plus the chunked-parallel wrapper.  Expected shape: FCNN
time roughly flat with sampling percentage; rule-based times grow; naive
linear far above everything.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples, timed
from repro.interpolation import make_interpolator
from repro.parallel import ParallelExecutor, parallel_reconstruct

__all__ = ["run"]

TIMED_METHODS = ("linear", "linear-naive", "natural", "shepard", "nearest")


def run(
    config: ExperimentConfig | None = None,
    dataset: str | None = None,
    include_naive: bool = True,
    include_parallel: bool = True,
) -> ExperimentResult:
    """Regenerate Fig 10 for one dataset (default: the config's)."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="fig10-sampling-time",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "dataset": dataset or config.dataset,
        },
    )

    pipeline = build_pipeline(config, dataset=dataset)
    fcnn = build_reconstructor(config)
    pipeline.train_fcnn(fcnn, epochs=config.epochs)
    field = pipeline.field(0)

    methods = [m for m in TIMED_METHODS if include_naive or m != "linear-naive"]
    samples = test_samples(pipeline, field, config.test_fractions, config)
    for fraction, sample in samples.items():

        _, seconds = timed(fcnn.reconstruct, sample)
        result.rows.append({"method": "fcnn", "fraction": fraction, "seconds": seconds})
        result.series.setdefault("fcnn", []).append((fraction, seconds))

        for name in methods:
            method = make_interpolator(name)
            _, seconds = timed(method.reconstruct, sample)
            result.rows.append({"method": name, "fraction": fraction, "seconds": seconds})
            result.series.setdefault(name, []).append((fraction, seconds))

        if include_parallel:
            executor = ParallelExecutor()
            _, seconds = timed(
                parallel_reconstruct, make_interpolator("linear"), sample, executor=executor
            )
            result.rows.append(
                {"method": "linear-parallel", "fraction": fraction, "seconds": seconds}
            )
            result.series.setdefault("linear-parallel", []).append((fraction, seconds))
    return result


if __name__ == "__main__":
    print(run().format())
