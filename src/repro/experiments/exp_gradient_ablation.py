"""Fig 8 — gradient vs no-gradient output layer.

Trains two otherwise-identical FCNNs — one predicting scalar + x/y/z
gradients (the paper's design), one scalar-only — and compares SNR across
the test sampling percentages.  Expected shape: the with-gradient model
scores consistently higher (the auxiliary gradient task forces the network
to respect neighboring structure, Sec III-E).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 8."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="fig08-gradient-ablation",
        notes={"profile": config.profile, "dims": config.dims, "epochs": config.epochs},
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    train = [pipeline.sample(field, f) for f in config.train_fractions]
    samples = test_samples(pipeline, field, config.test_fractions, config)

    for label, include in (("with-gradient", True), ("without-gradient", False)):
        fcnn = build_reconstructor(config, include_gradients=include)
        fcnn.train(field, train, epochs=config.epochs)
        for fraction, sample in samples.items():
            value = snr(field.values, fcnn.reconstruct(sample))
            result.rows.append({"model": label, "fraction": fraction, "snr": value})
            result.series.setdefault(label, []).append((fraction, value))
    return result


if __name__ == "__main__":
    print(run().format())
