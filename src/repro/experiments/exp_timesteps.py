"""Fig 11 — reconstruction quality across timesteps.

Hurricane dataset at the paper's 3% sampling rate.  Five curves:

* ``linear`` — Delaunay reconstruction from scratch at every timestep;
* ``fcnn-pre@A`` / ``fcnn-pre@B`` — FCNNs pretrained on the first and the
  middle evaluated timestep, applied to every timestep *without*
  fine-tuning (quality degrades away from the training timestep);
* ``fcnn-ft@A`` / ``fcnn-ft@B`` — the same pretrained models rolled across
  the timesteps with ~10 epochs of Case-1 fine-tuning at each, which the
  paper shows recovers quality and beats linear everywhere.

The timestep loop runs on the streaming
:class:`~repro.perf.CampaignScheduler`: timestep ``t+1`` is materialized
and sampled on the prefetch thread while ``t`` fine-tunes on the main
thread and ``t-1`` reconstructs/scores on the emit thread.  Fine-tuning
stays strictly sequential (model state rolls forward in time) and the
emit stage works on published weight snapshots restored into dedicated
clones — results are bit-identical to the serial loop
(``config.campaign_pipeline = False``).

With ``config.batched_finetune`` the ``fcnn-ft`` curves switch to the
fused :mod:`repro.nn.batched` engine: every timestep fine-tunes **from
the pretrained base** (the paper's transfer setup) and timesteps advance
together in blocks of ``config.finetune_batch`` — a different (but
block-size-invariant) trajectory from the rolling curves by design; see
docs/TRAINING.md.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr
from repro.perf.campaign import CampaignScheduler
from repro.perf.weights import restore_weights, snapshot_weights

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 11."""
    config = config or get_config()
    timesteps = tuple(config.timesteps)
    if len(timesteps) < 2:
        raise ValueError("need at least two timesteps for the timestep experiment")
    t_a = timesteps[0]
    t_b = timesteps[len(timesteps) // 2]

    result = ExperimentResult(
        experiment="fig11-timesteps",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "fraction": config.timestep_fraction,
            "pretrain_timesteps": (t_a, t_b),
            "finetune_epochs": config.finetune_epochs,
            "pipeline": config.campaign_pipeline,
            "batched_finetune": config.batched_finetune,
        },
    )

    pipeline = build_pipeline(config)
    from repro.interpolation import make_interpolator

    linear = make_interpolator("linear")

    # Pretrain the two base models.
    pretrained = {}
    for tag, t in (("A", t_a), ("B", t_b)):
        fcnn = build_reconstructor(config)
        pipeline.train_fcnn(fcnn, timestep=t, epochs=config.epochs)
        pretrained[tag] = fcnn

    # Rolling fine-tuned copies (model state carries forward in time) and
    # emit-side twins the published per-timestep weights are restored into.
    # clone() copies only the learned state — not deepcopy's arenas/caches.
    finetuned = {tag: model.clone() for tag, model in pretrained.items()}
    emitters = {tag: model.clone() for tag, model in pretrained.items()}

    def materialize(t: int):
        field = pipeline.field(t)
        sample = test_samples(pipeline, field, (config.timestep_fraction,), config)[
            config.timestep_fraction
        ]
        return field, sample

    def process(t: int, item):
        field, sample = item
        # Both rolling models fine-tune on the same (deterministic) draws.
        train = [pipeline.sample(field, f) for f in config.train_fractions]
        flats = {}
        for tag, model in finetuned.items():
            model.fine_tune(field, train, epochs=config.finetune_epochs, strategy="full")
            flats[tag] = snapshot_weights(model.model).data
        return field, sample, flats

    def emit(t: int, payload):
        field, sample, flats = payload
        record = {"timestep": t}
        record["linear"] = snr(field.values, linear.reconstruct(sample))
        for tag, model in pretrained.items():
            record[f"fcnn-pre@{tag}"] = snr(field.values, model.reconstruct(sample))
        for tag, model in emitters.items():
            restore_weights(model.model, flats[tag])
            record[f"fcnn-ft@{tag}"] = snr(field.values, model.reconstruct(sample))
        return record

    # Batched variant: scheduler items become block indices, every block's
    # fcnn-ft members fine-tune together from the pretrained base.
    blocks: list[tuple[int, ...]] = []
    if config.batched_finetune:
        size = config.finetune_batch if config.finetune_batch > 0 else len(timesteps)
        blocks = [timesteps[i : i + size] for i in range(0, len(timesteps), size)]

    def materialize_block(block_index: int):
        return [materialize(t) for t in blocks[block_index]]

    def process_block(block_index: int, items):
        fields = [field for field, _ in items]
        trains = [
            [pipeline.sample(field, f) for f in config.train_fractions] for field in fields
        ]
        flats_per_t = [{} for _ in items]
        for tag, model in pretrained.items():
            flats, _histories = model.fine_tune_batch(
                fields, trains, epochs=config.finetune_epochs, strategy="full"
            )
            for slot, flat in zip(flats_per_t, flats):
                slot[tag] = flat
        return [
            (field, sample, flats) for (field, sample), flats in zip(items, flats_per_t)
        ]

    def emit_block(block_index: int, payloads):
        return [emit(t, payload) for t, payload in zip(blocks[block_index], payloads)]

    if config.batched_finetune:
        scheduler = CampaignScheduler(
            materialize_block, process_block, emit_block, pipeline=config.campaign_pipeline
        )
        records = (
            record for block in scheduler.run(range(len(blocks))) for record in block
        )
    else:
        scheduler = CampaignScheduler(
            materialize, process, emit, pipeline=config.campaign_pipeline
        )
        records = iter(scheduler.run(timesteps))
    for record in records:
        result.rows.append(record)
        for key, value in record.items():
            if key != "timestep":
                result.series.setdefault(key, []).append((record["timestep"], value))
    return result


if __name__ == "__main__":
    print(run().format())
