"""Fig 11 — reconstruction quality across timesteps.

Hurricane dataset at the paper's 3% sampling rate.  Five curves:

* ``linear`` — Delaunay reconstruction from scratch at every timestep;
* ``fcnn-pre@A`` / ``fcnn-pre@B`` — FCNNs pretrained on the first and the
  middle evaluated timestep, applied to every timestep *without*
  fine-tuning (quality degrades away from the training timestep);
* ``fcnn-ft@A`` / ``fcnn-ft@B`` — the same pretrained models rolled across
  the timesteps with ~10 epochs of Case-1 fine-tuning at each, which the
  paper shows recovers quality and beats linear everywhere.
"""

from __future__ import annotations

import copy

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 11."""
    config = config or get_config()
    timesteps = tuple(config.timesteps)
    if len(timesteps) < 2:
        raise ValueError("need at least two timesteps for the timestep experiment")
    t_a = timesteps[0]
    t_b = timesteps[len(timesteps) // 2]

    result = ExperimentResult(
        experiment="fig11-timesteps",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "fraction": config.timestep_fraction,
            "pretrain_timesteps": (t_a, t_b),
            "finetune_epochs": config.finetune_epochs,
        },
    )

    pipeline = build_pipeline(config)
    from repro.interpolation import make_interpolator

    linear = make_interpolator("linear")

    # Pretrain the two base models.
    pretrained = {}
    for tag, t in (("A", t_a), ("B", t_b)):
        fcnn = build_reconstructor(config)
        pipeline.train_fcnn(fcnn, timestep=t, epochs=config.epochs)
        pretrained[tag] = fcnn

    # Rolling fine-tuned copies (model state carries forward in time).
    finetuned = {tag: copy.deepcopy(model) for tag, model in pretrained.items()}

    for t in timesteps:
        field = pipeline.field(t)
        sample = test_samples(pipeline, field, (config.timestep_fraction,), config)[
            config.timestep_fraction
        ]

        record = {"timestep": t}
        record["linear"] = snr(field.values, linear.reconstruct(sample))
        for tag, model in pretrained.items():
            record[f"fcnn-pre@{tag}"] = snr(field.values, model.reconstruct(sample))
        for tag, model in finetuned.items():
            train = [pipeline.sample(field, f) for f in config.train_fractions]
            model.fine_tune(field, train, epochs=config.finetune_epochs, strategy="full")
            record[f"fcnn-ft@{tag}"] = snr(field.values, model.reconstruct(sample))

        result.rows.append(record)
        for key, value in record.items():
            if key != "timestep":
                result.series.setdefault(key, []).append((t, value))
    return result


if __name__ == "__main__":
    print(run().format())
