"""Shared experiment plumbing: results, builders, timing."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import FCNNReconstructor
from repro.core.pipeline import ReconstructionPipeline
from repro.datasets import make_dataset
from repro.experiments.config import ExperimentConfig
from repro.obs import NullRecorder, RunRecorder
from repro.resilience import CheckpointConfig, HealthGuard
from repro.sampling import MultiCriteriaSampler

__all__ = [
    "ExperimentResult",
    "build_pipeline",
    "build_reconstructor",
    "build_health_guard",
    "build_checkpoint_config",
    "build_recorder",
    "timed",
]


@dataclass
class ExperimentResult:
    """Structured output of one experiment runner.

    ``rows`` are flat records (one per measured point, ready for tabular
    printing); ``series`` groups the same numbers the way the paper's figure
    draws its curves; ``notes`` records provenance (profile, sizes, seeds).
    """

    experiment: str
    rows: list[dict] = field(default_factory=list)
    series: dict = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    def format(self) -> str:
        """ASCII rendering: notes, then the rows as an aligned table."""
        from repro.experiments.reporting import format_table

        lines = [f"== {self.experiment} =="]
        for k, v in self.notes.items():
            lines.append(f"   {k}: {v}")
        if self.rows:
            lines.append(format_table(self.rows))
        return "\n".join(lines)


def build_pipeline(config: ExperimentConfig, dataset: str | None = None) -> ReconstructionPipeline:
    """Dataset + paper sampler + training fractions from a config."""
    data = make_dataset(dataset or config.dataset, dims=config.dims, seed=config.seed)
    sampler = MultiCriteriaSampler(seed=config.seed)
    return ReconstructionPipeline(
        dataset=data,
        sampler=sampler,
        train_fractions=config.train_fractions,
    )


def build_reconstructor(config: ExperimentConfig, **overrides) -> FCNNReconstructor:
    """FCNN configured from an :class:`ExperimentConfig`."""
    kwargs = dict(
        hidden_layers=config.hidden_layers,
        num_neighbors=config.num_neighbors,
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        gradient_loss_weight=config.gradient_loss_weight,
        seed=config.seed,
        fast_path=config.fast_path,
        dtype_policy=config.dtype_policy,
    )
    kwargs.update(overrides)
    return FCNNReconstructor(**kwargs)


def build_health_guard(config: ExperimentConfig) -> HealthGuard | None:
    """Numerical health guard from a config; ``health_policy=""`` disables it."""
    if not config.health_policy:
        return None
    return HealthGuard(config.health_policy, max_retries=config.health_max_retries)


def build_checkpoint_config(
    config: ExperimentConfig, name: str = "train"
) -> CheckpointConfig | None:
    """Training-checkpoint config, or ``None`` when checkpointing is off.

    Checkpoints land at ``<checkpoint_dir>/<name>.npz`` every
    ``checkpoint_every`` epochs; both fields must be set to enable them.
    """
    if config.checkpoint_every <= 0 or not config.checkpoint_dir:
        return None
    path = Path(config.checkpoint_dir) / f"{name}.npz"
    path.parent.mkdir(parents=True, exist_ok=True)
    return CheckpointConfig(path=path, every=config.checkpoint_every)


def build_recorder(config: ExperimentConfig, name: str) -> RunRecorder | NullRecorder:
    """Run recorder for one experiment, or a no-op when ``config.obs`` is unset.

    The recorder lands at ``<config.obs>/<name>`` (JSONL events +
    ``run.json`` manifest) and its metadata captures the config fields that
    determine the run (profile, dataset, dims, seed, epochs) so two runs'
    ``config_hash`` match exactly when their setups do.  Use as a context
    manager around the runner call::

        with build_recorder(config, "fig10"):
            result = exp_sampling_time.run(config)
    """
    if not config.obs:
        return NullRecorder()
    meta = {
        "experiment": name,
        "profile": config.profile,
        "dataset": config.dataset,
        "dims": list(config.dims),
        "epochs": config.epochs,
        "hidden_layers": list(config.hidden_layers),
        "seed": config.seed,
    }
    return RunRecorder(Path(config.obs) / name, meta=meta)


def test_samples(pipeline, field, fractions, config: ExperimentConfig) -> dict:
    """Independent test-time sample draws, one per fraction.

    Test draws use a seed offset from the training sampler's so a model is
    never scored on the very voids it trained on.
    """
    seed = config.seed + config.test_seed_offset
    return {f: pipeline.sample(field, f, seed=seed) for f in fractions}


def timed(fn, *args, **kwargs):
    """``(result, seconds)`` of calling ``fn``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0
