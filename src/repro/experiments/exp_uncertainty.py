"""Extension experiment — deep-ensemble uncertainty (paper Sec V, item 3).

Trains a deep ensemble on the Hurricane dataset and evaluates, per sampling
percentage:

* the ensemble mean's SNR (does averaging help over a single model?);
* k=2 interval coverage (calibration: ~0.95 would be ideal Gaussian);
* the error/uncertainty correlation — whether the per-voxel ensemble std
  actually ranks where the reconstruction is wrong, the property that
  would let an adaptive workflow resample the right regions.
"""

from __future__ import annotations

import numpy as np

from repro.core.ensemble import DeepEnsembleReconstructor
from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run"]


def run(
    config: ExperimentConfig | None = None,
    num_members: int = 3,
) -> ExperimentResult:
    """Run the uncertainty evaluation."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="ext-uncertainty-ensemble",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "members": num_members,
            "epochs": config.epochs,
        },
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    train = [pipeline.sample(field, f) for f in config.train_fractions]

    single = build_reconstructor(config)
    single.train(field, train, epochs=config.epochs)

    ensemble = DeepEnsembleReconstructor(
        num_members=num_members,
        base_seed=config.seed,
        hidden_layers=config.hidden_layers,
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        gradient_loss_weight=config.gradient_loss_weight,
    )
    ensemble.train(field, train, epochs=config.epochs)

    samples = test_samples(pipeline, field, config.test_fractions, config)
    for fraction, sample in samples.items():
        rec = ensemble.reconstruct_with_uncertainty(sample)
        single_volume = single.reconstruct(sample)

        void = sample.void_indices()
        err = np.abs(field.flat[void] - rec.mean.ravel()[void])
        unc = rec.std.ravel()[void]
        corr = float(np.corrcoef(err, unc)[0, 1]) if err.std() > 0 and unc.std() > 0 else 0.0

        record = {
            "fraction": fraction,
            "snr_single": snr(field.values, single_volume),
            "snr_ensemble": snr(field.values, rec.mean),
            "coverage_2sigma": rec.coverage(field.values, k=2.0),
            "err_unc_corr": corr,
            "mean_std": float(unc.mean()),
        }
        result.rows.append(record)
        result.series.setdefault("snr_ensemble", []).append((fraction, record["snr_ensemble"]))
        result.series.setdefault("err_unc_corr", []).append((fraction, corr))
    return result


if __name__ == "__main__":
    print(run().format())
