"""Fig 5's two fine-tuning cases: full-layer vs last-two-layer retraining.

Pretrains on one timestep, then adapts to a later timestep two ways:

* **Case 1** — all layers trainable, ~10 epochs;
* **Case 2** — only the last two Dense layers trainable, swept over
  increasing epoch budgets (the paper needs 300-500 epochs to match
  Case 1).

Also reports the checkpoint-size trade-off the paper discusses: Case 2 only
needs to store the last two layers per additional timestep.
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run"]


def run(
    config: ExperimentConfig | None = None,
    case2_budgets: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Regenerate the Case 1 / Case 2 fine-tuning comparison."""
    config = config or get_config()
    if case2_budgets is None:
        c2 = config.case2_epochs
        case2_budgets = tuple(sorted({max(1, c2 // 8), max(1, c2 // 3), c2}))
    timesteps = tuple(config.timesteps)
    t_train = timesteps[0]
    t_tune = timesteps[len(timesteps) // 2]

    result = ExperimentResult(
        experiment="fig05-finetune-cases",
        notes={
            "profile": config.profile,
            "dims": config.dims,
            "train_timestep": t_train,
            "finetune_timestep": t_tune,
        },
    )

    pipeline = build_pipeline(config)
    base = build_reconstructor(config)
    pipeline.train_fcnn(base, timestep=t_train, epochs=config.epochs)

    field = pipeline.field(t_tune)
    train = [pipeline.sample(field, f) for f in config.train_fractions]
    test = test_samples(pipeline, field, (config.timestep_fraction,), config)[
        config.timestep_fraction
    ]

    def measure(model, label: str, epochs: int, seconds: float) -> None:
        value = snr(field.values, model.reconstruct(test))
        result.rows.append(
            {"case": label, "epochs": epochs, "snr": value, "finetune_seconds": seconds}
        )
        result.series.setdefault(label, []).append((epochs, value))

    measure(base, "no-finetune", 0, 0.0)

    # clone() copies only the learned state (weights + normalizer), not the
    # Workspace arenas and cached geometry deepcopy used to duplicate.
    case1 = base.clone()
    hist = case1.fine_tune(field, train, epochs=config.finetune_epochs, strategy="full")
    measure(case1, "case1-full", config.finetune_epochs, hist.total_seconds)

    for budget in case2_budgets:
        case2 = base.clone()
        hist = case2.fine_tune(field, train, epochs=budget, strategy="last", num_trainable=2)
        measure(case2, "case2-last2", budget, hist.total_seconds)

    # Checkpoint-size trade-off (paper: store the full model once, then only
    # the last two layers per timestep under Case 2).
    with tempfile.TemporaryDirectory() as tmp:
        full_path = os.path.join(tmp, "full.npz")
        part_path = os.path.join(tmp, "part.npz")
        case1.save(full_path)
        case1.save_partial(part_path, num_layers=2)
        result.notes["full_checkpoint_bytes"] = os.path.getsize(full_path)
        result.notes["partial_checkpoint_bytes"] = os.path.getsize(part_path)
    return result


if __name__ == "__main__":
    print(run().format())
