"""Fig 13 — reconstruction volume upscaling across spatial domains.

Hurricane dataset.  The high-resolution grid has ``upscale_factor`` x the
points per axis *and a shifted physical extent* (the paper modified the
spatial domain so the fine-tuned model must generalize to partly-unseen
territory).  Three curves of SNR vs sampling percentage, all evaluated on
the high-resolution grid:

* ``linear`` — Delaunay from the high-res sample;
* ``fcnn-full@hi`` — an FCNN trained entirely on the high-res data;
* ``fcnn-ft lo->hi`` — an FCNN pretrained on the low-res grid and fine-tuned
  ~10 epochs on high-res samples.

Expected shape: the fine-tuned model approaches the fully-trained one and
both beat linear — the paper's "knowledge transfer across resolution and
domain" claim.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.grid import upscaled_grid
from repro.interpolation import make_interpolator
from repro.metrics import snr

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig 13."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="fig13-upscaling",
        notes={
            "profile": config.profile,
            "low_dims": config.dims,
            "factor": config.upscale_factor,
            "shift": config.upscale_shift,
            "finetune_epochs": config.finetune_epochs,
        },
    )

    pipeline = build_pipeline(config)
    low_grid = pipeline.dataset.grid
    high_grid = upscaled_grid(low_grid, config.upscale_factor, config.upscale_shift)
    result.notes["high_dims"] = high_grid.dims

    # Pretrain on the low-resolution domain.
    fcnn_low = build_reconstructor(config)
    pipeline.train_fcnn(fcnn_low, epochs=config.epochs)

    # High-resolution field (same underlying simulation, shifted window).
    field_hi = pipeline.field(0, grid=high_grid)
    train_hi = [pipeline.sample(field_hi, f) for f in config.train_fractions]

    # Fully trained high-res reference model.
    fcnn_hi = build_reconstructor(config)
    fcnn_hi.train(field_hi, train_hi, epochs=config.epochs)

    # Fine-tune the low-res model onto the high-res domain.
    fcnn_ft = fcnn_low
    fcnn_ft.fine_tune(field_hi, train_hi, epochs=config.finetune_epochs, strategy="full")

    linear = make_interpolator("linear")
    samples = test_samples(pipeline, field_hi, config.test_fractions, config)
    for fraction, sample in samples.items():
        record = {
            "fraction": fraction,
            "linear": snr(field_hi.values, linear.reconstruct(sample)),
            "fcnn-full@hi": snr(field_hi.values, fcnn_hi.reconstruct(sample)),
            "fcnn-ft lo->hi": snr(field_hi.values, fcnn_ft.reconstruct(sample)),
        }
        result.rows.append(record)
        for key, value in record.items():
            if key != "fraction":
                result.series.setdefault(key, []).append((fraction, value))
    return result


if __name__ == "__main__":
    print(run().format())
