"""Table I — full-training time per dataset and resolution.

Times the full training run (the profile's epoch budget; 500 in the paper)
for each dataset at the profile resolution, plus the Hurricane dataset at
the upscaled resolution — the four rows of Table I.  Expected shape:
training time scales with the number of training rows (i.e. with grid
size), with the upscaled Hurricane and the largest dataset costing the
most.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import (
    ExperimentResult,
    build_checkpoint_config,
    build_health_guard,
    build_pipeline,
    build_reconstructor,
)
from repro.grid import upscaled_grid

__all__ = ["run"]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Table I."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="tab1-training-time",
        notes={"profile": config.profile, "epochs": config.epochs},
    )

    jobs: list[tuple[str, str, tuple[int, int, int] | None]] = [
        ("hurricane", "base", None),
        ("hurricane", "upscaled", None),  # grid resolved below
        ("combustion", "base", None),
        ("ionization", "base", None),
    ]

    for dataset, variant, _ in jobs:
        pipeline = build_pipeline(config, dataset=dataset)
        grid = pipeline.dataset.grid
        if variant == "upscaled":
            grid = upscaled_grid(grid, config.upscale_factor)
        field = pipeline.field(0, grid=grid)
        train = [pipeline.sample(field, f) for f in config.train_fractions]

        fcnn = build_reconstructor(config)
        fcnn.train(
            field,
            train,
            epochs=config.epochs,
            health=build_health_guard(config),
            checkpoint=build_checkpoint_config(config, name=f"{dataset}-{variant}"),
        )
        seconds = fcnn.history.total_seconds
        rows = sum(s.void_indices().size for s in train)
        result.rows.append(
            {
                "dataset": dataset,
                "resolution": "x".join(str(d) for d in grid.dims),
                "train_rows": rows,
                "epochs": config.epochs,
                "train_seconds": seconds,
            }
        )
        result.series.setdefault("train_seconds", []).append(
            (f"{dataset}/{variant}", seconds)
        )
    return result


if __name__ == "__main__":
    print(run().format())
