"""Fig 14 + Table II — training-set sub-sampling.

Trains the Hurricane FCNN on 100%, 50% and 25% of the assembled training
rows, recording training time (Table II) and SNR across test percentages
(Fig 14).  Expected shape: training time drops ~linearly with the fraction
while SNR barely moves.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, get_config
from repro.experiments.runner import ExperimentResult, build_pipeline, build_reconstructor, test_samples
from repro.metrics import snr

__all__ = ["run"]


def run(
    config: ExperimentConfig | None = None,
    fractions: tuple[float, ...] = (1.0, 0.5, 0.25),
) -> ExperimentResult:
    """Regenerate Fig 14 and Table II."""
    config = config or get_config()
    result = ExperimentResult(
        experiment="fig14-tab2-training-subset",
        notes={"profile": config.profile, "dims": config.dims, "epochs": config.epochs},
    )

    pipeline = build_pipeline(config)
    field = pipeline.field(0)
    samples = test_samples(pipeline, field, config.test_fractions, config)

    for train_fraction in fractions:
        fcnn = build_reconstructor(config)
        pipeline.train_fcnn(fcnn, epochs=config.epochs, train_fraction=train_fraction)
        seconds = fcnn.history.total_seconds
        label = f"{int(round(train_fraction * 100))}%"
        for fraction, sample in samples.items():
            value = snr(field.values, fcnn.reconstruct(sample))
            result.rows.append(
                {
                    "train_data": label,
                    "fraction": fraction,
                    "snr": value,
                    "train_seconds": seconds,
                }
            )
            result.series.setdefault(label, []).append((fraction, value))
        result.series.setdefault("train_seconds", []).append((train_fraction, seconds))
    return result


if __name__ == "__main__":
    print(run().format())
