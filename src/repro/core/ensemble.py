"""Uncertainty-aware reconstruction via deep ensembles.

The paper's discussion (Sec V) names reconstruction uncertainty as an open
challenge and proposes "deep ensembles, Bayesian neural networks etc." as
future work.  This module implements the deep-ensemble option: ``M``
independently-initialized FCNNs trained on the same sampled data; the
ensemble mean is the reconstruction and the across-member standard
deviation is a per-voxel epistemic-uncertainty field.

The uncertainty field is *actionable* in the paper's workflow sense: high
variance marks regions where the sample under-constrains the field (deep
voids, steep features), i.e. where an adaptive sampler should spend more
budget next timestep.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid
from repro.nn import TrainingHistory
from repro.sampling.base import SampledField

__all__ = ["EnsembleReconstruction", "DeepEnsembleReconstructor"]


@dataclass(frozen=True)
class EnsembleReconstruction:
    """Mean reconstruction plus per-voxel epistemic uncertainty."""

    mean: np.ndarray     # ensemble-mean field, shaped like the grid
    std: np.ndarray      # across-member standard deviation, same shape
    members: int

    def interval(self, k: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` bands at ``k`` standard deviations."""
        return self.mean - k * self.std, self.mean + k * self.std

    def coverage(self, truth: np.ndarray, k: float = 2.0) -> float:
        """Fraction of voxels whose true value falls inside the k-sigma band.

        A well-calibrated ensemble at k=2 covers ~95% under Gaussian
        assumptions; sampled-exactly voxels have zero width and count as
        covered when exact.
        """
        truth = np.asarray(truth)
        lo, hi = self.interval(k)
        eps = 1e-12 * (np.abs(truth) + 1.0)
        return float(np.mean((truth >= lo - eps) & (truth <= hi + eps)))

    def calibration_factor(self, truth: np.ndarray, target: float = 0.95, k: float = 2.0) -> float:
        """Multiplier ``c`` such that ``c * std`` k-sigma bands hit ``target`` coverage.

        Deep ensembles are typically under-dispersed; computing this factor
        on a timestep where the truth is available (the in situ training
        step) and applying it to later reconstructions is the standard
        variance-scaling calibration.  Only voxels with nonzero band width
        participate (sampled voxels are exact by construction).
        """
        if not (0.0 < target < 1.0):
            raise ValueError(f"target coverage must be in (0, 1), got {target}")
        truth = np.asarray(truth, dtype=np.float64).ravel()
        mean = self.mean.ravel()
        std = self.std.ravel()
        free = std > 0
        if not free.any():
            return 1.0
        # Required multiplier per voxel: |error| / (k * std); the target
        # quantile of that distribution calibrates the band.
        needed = np.abs(truth[free] - mean[free]) / (k * std[free])
        return float(np.quantile(needed, target))

    def scaled(self, factor: float) -> "EnsembleReconstruction":
        """A copy with the uncertainty band scaled by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return EnsembleReconstruction(mean=self.mean, std=self.std * factor, members=self.members)


class DeepEnsembleReconstructor:
    """An ensemble of :class:`FCNNReconstructor` members.

    Parameters
    ----------
    num_members:
        Ensemble size (5 is the classic deep-ensembles default; 3 is a
        practical CPU budget).
    base_seed:
        Member ``i`` uses seed ``base_seed + i`` for weights and shuffling —
        the only source of diversity, as in standard deep ensembles.
    **member_kwargs:
        Forwarded to every :class:`FCNNReconstructor`.
    """

    name = "fcnn-ensemble"

    def __init__(self, num_members: int = 3, base_seed: int = 0, **member_kwargs) -> None:
        if num_members < 2:
            raise ValueError(f"an ensemble needs >= 2 members, got {num_members}")
        member_kwargs.pop("seed", None)
        self.members = [
            FCNNReconstructor(seed=base_seed + i, **member_kwargs)
            for i in range(num_members)
        ]

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def is_trained(self) -> bool:
        return all(m.is_trained for m in self.members)

    # -------------------------------------------------------------- training
    def train(
        self,
        field: TimestepField,
        samples: SampledField | list[SampledField],
        epochs: int = 500,
        train_fraction: float = 1.0,
    ) -> list[TrainingHistory]:
        """Train every member on the same data (diversity from init/shuffle)."""
        return [
            m.train(field, samples, epochs=epochs, train_fraction=train_fraction)
            for m in self.members
        ]

    def fine_tune(
        self,
        field: TimestepField,
        samples: SampledField | list[SampledField],
        epochs: int = 10,
        strategy: str = "full",
        num_trainable: int = 2,
    ) -> list[TrainingHistory]:
        """Fine-tune every member (Case 1/Case 2, like the single model)."""
        return [
            m.fine_tune(field, samples, epochs=epochs, strategy=strategy,
                        num_trainable=num_trainable)
            for m in self.members
        ]

    # --------------------------------------------------------- reconstruction
    def reconstruct_with_uncertainty(
        self,
        sample: SampledField,
        target_grid: UniformGrid | None = None,
    ) -> EnsembleReconstruction:
        """Ensemble mean + per-voxel std.

        On the sample's own grid every member pins sampled voxels to their
        stored values, so uncertainty there is exactly zero — consistent
        with those values being known.
        """
        volumes = np.stack(
            [m.reconstruct(sample, target_grid=target_grid) for m in self.members]
        )
        return EnsembleReconstruction(
            mean=volumes.mean(axis=0),
            std=volumes.std(axis=0),
            members=self.num_members,
        )

    def reconstruct(
        self,
        sample: SampledField,
        target_grid: UniformGrid | None = None,
    ) -> np.ndarray:
        """Pipeline-compatible reconstruction (the ensemble mean)."""
        return self.reconstruct_with_uncertainty(sample, target_grid).mean

    # ------------------------------------------------------------ checkpoints
    def save(self, directory: str | Path) -> None:
        """Save each member as ``member<i>.npz`` inside ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for i, m in enumerate(self.members):
            m.save(directory / f"member{i}.npz")

    @classmethod
    def load(cls, directory: str | Path) -> "DeepEnsembleReconstructor":
        """Load an ensemble saved with :meth:`save`."""
        directory = Path(directory)
        paths = sorted(directory.glob("member*.npz"))
        if len(paths) < 2:
            raise ValueError(f"{directory}: found {len(paths)} member checkpoints, need >= 2")
        ensemble = cls.__new__(cls)
        ensemble.members = [FCNNReconstructor.load(p) for p in paths]
        return ensemble
