"""Feature/target normalization for the FCNN.

Coordinates are mapped to the unit cube of the *query grid's* extent and
scalar values standardized by the *sample's* mean/std — both statistics are
available from the sampled data alone at reconstruction time, so a model
trained on one timestep can be applied to other timesteps, sampling rates
and resolutions without peeking at the full field (the paper's in situ
constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid import UniformGrid

__all__ = ["Normalizer"]


@dataclass
class Normalizer:
    """Affine normalization of coordinates, values and gradient targets."""

    origin: np.ndarray          # (3,) coordinate offset
    span: np.ndarray            # (3,) coordinate scale
    value_mean: float
    value_std: float
    gradient_std: np.ndarray    # (3,) gradient scale (one shared value)

    @classmethod
    def fit(
        cls,
        grid: UniformGrid,
        sample_values: np.ndarray,
        gradients: np.ndarray | None = None,
    ) -> "Normalizer":
        """Fit statistics from a grid's geometry and the sampled values.

        ``gradients`` (``(N, 3)``), when available at training time, set the
        gradient-target scale; otherwise a scale derived from the value std
        and grid spacing is used so inference-only fits stay consistent.
        """
        origin = np.asarray(grid.origin, dtype=np.float64)
        span = (np.asarray(grid.dims, dtype=np.float64) - 1.0) * np.asarray(grid.spacing)
        span = np.where(span <= 0, 1.0, span)

        values = np.asarray(sample_values, dtype=np.float64)
        v_mean = float(values.mean())
        v_std = float(values.std())
        if v_std <= 0:
            v_std = 1.0

        if gradients is not None:
            # One shared scale preserves the relative magnitudes of the
            # gradient components; per-axis scaling would amplify the
            # quietest axis's noise into a loud training target.
            g = float(np.asarray(gradients, dtype=np.float64).std())
            g_std = np.full(3, g if g > 0 else 1.0)
        else:
            g_std = np.full(3, v_std / max(float(np.min(grid.spacing)), 1e-12))
        return cls(origin=origin, span=span, value_mean=v_mean, value_std=v_std, gradient_std=g_std)

    # ---------------------------------------------------------- coordinates
    def normalize_coords(self, points: np.ndarray) -> np.ndarray:
        """Physical positions → unit-cube coordinates (may exceed [0,1])."""
        return (np.asarray(points, dtype=np.float64) - self.origin) / self.span

    def denormalize_coords(self, coords: np.ndarray) -> np.ndarray:
        """Unit-cube coordinates → physical positions (inverse of normalize)."""
        return np.asarray(coords, dtype=np.float64) * self.span + self.origin

    # -------------------------------------------------------------- values
    def normalize_values(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self.value_mean) / self.value_std

    def denormalize_values(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) * self.value_std + self.value_mean

    def denormalize_values_into(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``denormalize_values`` writing into ``out`` (fast-path inference).

        Same operation order (scale, then shift), so results are
        bit-identical to the allocating form; ``out`` may be a strided view
        (e.g. a slice of the full reconstruction vector).
        """
        np.multiply(values, self.value_std, out=out)
        out += self.value_mean
        return out

    # ---------------------------------------------------- sklearn-style API
    def transform(self, points: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Normalize a (coords, values) pair in one call."""
        return self.normalize_coords(points), self.normalize_values(values)

    def inverse_transform(
        self, coords: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Invert :meth:`transform`; ``inverse_transform(*transform(p, v))``
        round-trips to the inputs (up to float rounding)."""
        return self.denormalize_coords(coords), self.denormalize_values(values)

    # ------------------------------------------------------------ gradients
    def normalize_gradients(self, gradients: np.ndarray) -> np.ndarray:
        return np.asarray(gradients, dtype=np.float64) / self.gradient_std

    def denormalize_gradients(self, gradients: np.ndarray) -> np.ndarray:
        return np.asarray(gradients, dtype=np.float64) * self.gradient_std

    # ------------------------------------------------------------ plumbing
    def as_dict(self) -> dict:
        """JSON-friendly form for checkpoints."""
        return {
            "origin": self.origin.tolist(),
            "span": self.span.tolist(),
            "value_mean": self.value_mean,
            "value_std": self.value_std,
            "gradient_std": self.gradient_std.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Normalizer":
        return cls(
            origin=np.asarray(d["origin"], dtype=np.float64),
            span=np.asarray(d["span"], dtype=np.float64),
            value_mean=float(d["value_mean"]),
            value_std=float(d["value_std"]),
            gradient_std=np.asarray(d["gradient_std"], dtype=np.float64),
        )
