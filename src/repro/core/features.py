"""k-nearest-neighbor feature engineering (paper Sec III-D, Fig 4).

For each void location the five nearest *sampled* points are found with a
kd-tree; the input feature vector concatenates, in nearest-first order, each
neighbor's normalized (x, y, z) and standardized scalar value (5 x 4 = 20
entries) with the void's own normalized (x, y, z) — 23 features total.
Targets are the standardized scalar plus the three standardized gradient
components (4 outputs), or just the scalar for the no-gradient ablation
(Fig 8).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.normalization import Normalizer
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid, field_gradients
from repro.sampling.base import SampledField

__all__ = ["FeatureExtractor"]


class FeatureExtractor:
    """Builds FCNN inputs/targets from a sampled field.

    Parameters
    ----------
    num_neighbors:
        Sampled points per feature vector; the paper uses 5.
    include_gradients:
        Whether targets carry the x/y/z gradients alongside the scalar
        (the paper's design; ``False`` reproduces the Fig 8 ablation).
    workers:
        kd-tree query parallelism (-1 = all cores).
    """

    def __init__(
        self,
        num_neighbors: int = 5,
        include_gradients: bool = True,
        workers: int = -1,
    ) -> None:
        if num_neighbors < 1:
            raise ValueError(f"num_neighbors must be >= 1, got {num_neighbors}")
        self.num_neighbors = int(num_neighbors)
        self.include_gradients = bool(include_gradients)
        self.workers = int(workers)

    # --------------------------------------------------------------- sizes
    @property
    def feature_size(self) -> int:
        """Input width: k * (x, y, z, value) + void (x, y, z)."""
        return self.num_neighbors * 4 + 3

    @property
    def target_size(self) -> int:
        """Output width: scalar (+ 3 gradients when enabled)."""
        return 4 if self.include_gradients else 1

    # ------------------------------------------------------------ features
    def features(
        self,
        sample: SampledField,
        query_points: np.ndarray,
        normalizer: Normalizer,
    ) -> np.ndarray:
        """Assemble ``(Q, feature_size)`` inputs for arbitrary query points."""
        query_points = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        k = min(self.num_neighbors, sample.num_samples)
        tree = cKDTree(sample.points)
        _, idx = tree.query(query_points, k=k, workers=self.workers)
        if k == 1:
            idx = idx[:, None]
        if k < self.num_neighbors:
            # Degenerate sample smaller than k: repeat the farthest neighbor.
            pad = np.repeat(idx[:, -1:], self.num_neighbors - k, axis=1)
            idx = np.concatenate([idx, pad], axis=1)

        neighbor_xyz = normalizer.normalize_coords(sample.points[idx.ravel()]).reshape(
            len(query_points), self.num_neighbors, 3
        )
        neighbor_val = normalizer.normalize_values(sample.values[idx])[..., None]
        neighbor_feat = np.concatenate([neighbor_xyz, neighbor_val], axis=2).reshape(
            len(query_points), self.num_neighbors * 4
        )
        query_feat = normalizer.normalize_coords(query_points)
        return np.concatenate([neighbor_feat, query_feat], axis=1)

    # ------------------------------------------------------------- targets
    def targets(
        self,
        field: TimestepField,
        flat_indices: np.ndarray,
        normalizer: Normalizer,
    ) -> np.ndarray:
        """Assemble ``(Q, target_size)`` targets from the full field."""
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        scalar = normalizer.normalize_values(field.flat[flat_indices])[:, None]
        if not self.include_gradients:
            return scalar
        grads = field_gradients(field.grid, field.values)[flat_indices]
        return np.concatenate([scalar, normalizer.normalize_gradients(grads)], axis=1)

    # ------------------------------------------------------- training sets
    def training_data(
        self,
        field: TimestepField,
        sample: SampledField,
        normalizer: Normalizer,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inputs/targets over the sample's void locations (Fig 4 workflow)."""
        if field.grid != sample.grid:
            raise ValueError("field and sample must live on the same grid")
        void = sample.void_indices()
        points = field.grid.index_to_position(field.grid.flat_to_multi(void))
        x = self.features(sample, points, normalizer)
        y = self.targets(field, void, normalizer)
        return x, y

    def fit_normalizer(
        self,
        sample: SampledField,
        field: TimestepField | None = None,
        grid: UniformGrid | None = None,
    ) -> Normalizer:
        """Fit normalization statistics.

        At training time pass ``field`` so gradient scales come from real
        gradients; at inference time the sample alone suffices.
        """
        g = grid if grid is not None else sample.grid
        gradients = None
        if field is not None and self.include_gradients:
            gradients = field_gradients(field.grid, field.values)
        return Normalizer.fit(g, sample.values, gradients)
