"""k-nearest-neighbor feature engineering (paper Sec III-D, Fig 4).

For each void location the five nearest *sampled* points are found with a
kd-tree; the input feature vector concatenates, in nearest-first order, each
neighbor's normalized (x, y, z) and standardized scalar value (5 x 4 = 20
entries) with the void's own normalized (x, y, z) — 23 features total.
Targets are the standardized scalar plus the three standardized gradient
components (4 outputs), or just the scalar for the no-gradient ablation
(Fig 8).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.normalization import Normalizer
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid, field_gradients
from repro.sampling.base import SampledField

__all__ = ["FeatureExtractor", "TIE_BREAK_PAD", "canonical_neighbors"]

#: Extra kd-tree candidates fetched per query so rank-k distance ties
#: resolve canonically (see :func:`canonical_neighbors`).
TIE_BREAK_PAD = 15


def canonical_neighbors(dist: np.ndarray, idx: np.ndarray, k: int) -> np.ndarray:
    """Pick ``k`` of ``(Q, kq)`` candidate neighbors by ``(distance, index)``.

    kd-tree queries return candidates sorted by distance, but *ties* —
    ubiquitous between lattice points — are ordered by the tree's internal
    construction: two trees over different subsets of the same points can
    disagree both on the order of tied neighbors and on which tied
    candidate makes the ``k`` cut.  Re-sorting the padded candidate list
    by ``(distance, sample index)`` and keeping the first ``k`` makes the
    selection a pure function of the point set itself, so any spatial
    partition of the samples (for example a shard's halo-extended subset,
    whose local→global index map is strictly increasing) reproduces the
    global selection bit-for-bit whenever all ``k + TIE_BREAK_PAD``
    candidates lie inside the subset.
    """
    n, kq = idx.shape
    if kq <= 1:
        return idx[:, :k]
    rows = np.repeat(np.arange(n), kq)
    perm = np.lexsort((idx.ravel(), dist.ravel(), rows)).reshape(n, kq)
    perm -= np.arange(n)[:, None] * kq
    return np.take_along_axis(idx, perm[:, :k], axis=1)


class FeatureExtractor:
    """Builds FCNN inputs/targets from a sampled field.

    Parameters
    ----------
    num_neighbors:
        Sampled points per feature vector; the paper uses 5.
    include_gradients:
        Whether targets carry the x/y/z gradients alongside the scalar
        (the paper's design; ``False`` reproduces the Fig 8 ablation).
    workers:
        kd-tree query parallelism (-1 = all cores).
    cache_geometry:
        Reuse the sampled point cloud's kd-tree — and the last query's
        neighbor indices — across calls for the same ``(SampledField,
        query array)`` objects.  Chunked inference queries the same sample
        hundreds of times and per-timestep reconstruction repeats the
        identical void-point query; rebuilding the tree and re-running the
        neighbor search per call dominated warm reconstruction time.
        Keyed on object identity — mutating a sample's ``points`` or a
        cached query array in place after a query will go unnoticed.
    """

    def __init__(
        self,
        num_neighbors: int = 5,
        include_gradients: bool = True,
        workers: int = -1,
        cache_geometry: bool = True,
    ) -> None:
        if num_neighbors < 1:
            raise ValueError(f"num_neighbors must be >= 1, got {num_neighbors}")
        self.num_neighbors = int(num_neighbors)
        self.include_gradients = bool(include_gradients)
        self.workers = int(workers)
        self.cache_geometry = bool(cache_geometry)
        self._cached_sample: SampledField | None = None
        self._cached_tree: cKDTree | None = None
        self._cached_query: np.ndarray | None = None
        self._cached_idx: np.ndarray | None = None

    def _tree(self, sample: SampledField) -> cKDTree:
        """The sample's kd-tree, cached per sample object when enabled."""
        if not self.cache_geometry:
            return cKDTree(sample.points)
        if self._cached_sample is not sample:
            self._cached_tree = cKDTree(sample.points)
            self._cached_sample = sample
        return self._cached_tree

    # --------------------------------------------------------------- sizes
    @property
    def feature_size(self) -> int:
        """Input width: k * (x, y, z, value) + void (x, y, z)."""
        return self.num_neighbors * 4 + 3

    @property
    def target_size(self) -> int:
        """Output width: scalar (+ 3 gradients when enabled)."""
        return 4 if self.include_gradients else 1

    # ------------------------------------------------------------ features
    def features(
        self,
        sample: SampledField,
        query_points: np.ndarray,
        normalizer: Normalizer,
        *,
        canonical: bool = True,
    ) -> np.ndarray:
        """Assemble ``(Q, feature_size)`` inputs for arbitrary query points."""
        query_points = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        idx = self._neighbor_indices(sample, query_points, canonical=canonical)

        neighbor_xyz = normalizer.normalize_coords(sample.points[idx.ravel()]).reshape(
            len(query_points), self.num_neighbors, 3
        )
        neighbor_val = normalizer.normalize_values(sample.values[idx])[..., None]
        neighbor_feat = np.concatenate([neighbor_xyz, neighbor_val], axis=2).reshape(
            len(query_points), self.num_neighbors * 4
        )
        query_feat = normalizer.normalize_coords(query_points)
        return np.concatenate([neighbor_feat, query_feat], axis=1)

    def _neighbor_indices(
        self,
        sample: SampledField,
        query_points: np.ndarray,
        *,
        canonical: bool = True,
    ) -> np.ndarray:
        """``(Q, num_neighbors)`` nearest-sample indices, nearest first.

        Ties are broken canonically by sample index over a padded candidate
        list (:func:`canonical_neighbors`), so the selection depends only on
        the sampled point set — not on kd-tree construction order — and
        shard-local queries over a halo-extended subset reproduce it
        exactly.

        ``canonical=False`` queries exactly ``k`` candidates and keeps the
        kd-tree's own tie order.  Training uses it: a training set is
        built once from the global sample (no spatial subset ever has to
        reproduce the selection), so it can skip the padded query and the
        re-rank — and keep the exact neighbor sets the pre-canonical
        training path produced.  The non-canonical path never touches the
        memo below, so interleaving training and prediction over the same
        ``(sample, query_points)`` objects cannot leak one selection into
        the other.

        With ``cache_geometry`` the canonical result is memoized for the
        last ``(sample, query_points)`` *object* pair: reconstructing every
        timestep of a campaign re-queries the identical void positions
        (:meth:`SampledField.void_points` returns a cached array), so the
        kd-tree query — the dominant cost of warm reconstruction — runs
        once per geometry instead of once per call.
        """
        if not canonical:
            k = min(self.num_neighbors, sample.num_samples)
            _, idx = self._tree(sample).query(query_points, k=k, workers=self.workers)
            if k == 1:
                idx = idx[:, None]
            if k < self.num_neighbors:
                pad = np.repeat(idx[:, -1:], self.num_neighbors - k, axis=1)
                idx = np.concatenate([idx, pad], axis=1)
            return idx
        if (
            self.cache_geometry
            and sample is self._cached_sample
            and query_points is self._cached_query
            and self._cached_idx is not None
            and self._cached_idx.shape[1] == self.num_neighbors
        ):
            return self._cached_idx
        k = min(self.num_neighbors, sample.num_samples)
        kq = min(k + TIE_BREAK_PAD, sample.num_samples)
        dist, idx = self._tree(sample).query(query_points, k=kq, workers=self.workers)
        if kq == 1:
            dist, idx = dist[:, None], idx[:, None]
        idx = canonical_neighbors(dist, idx, k)
        if k < self.num_neighbors:
            # Degenerate sample smaller than k: repeat the farthest neighbor.
            pad = np.repeat(idx[:, -1:], self.num_neighbors - k, axis=1)
            idx = np.concatenate([idx, pad], axis=1)
        if self.cache_geometry:
            # _tree() above has already re-pointed _cached_sample at `sample`.
            self._cached_query = query_points
            self._cached_idx = idx
        return idx

    def features_into(
        self,
        sample: SampledField,
        query_points: np.ndarray,
        normalizer: Normalizer,
        out: np.ndarray,
        workspace=None,
        neighbor_idx: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`features` writing into a preallocated ``(Q, feature_size)`` block.

        The streaming-inference fast path: per-neighbor columns are filled
        with strided ufunc ``out=`` writes, and the kd-tree gathers land in
        ``workspace`` buffers (a :class:`repro.perf.Workspace`) when given.
        ``neighbor_idx`` lets a caller that has already resolved (or
        cached) the ``(Q, num_neighbors)`` nearest-sample indices for this
        block skip the kd-tree query.  The arithmetic sequence (gather,
        subtract origin, divide by span; subtract mean, divide by std)
        matches :meth:`features`, so the block is bit-identical to the
        corresponding slice of the allocating result.
        """
        query_points = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        nq = len(query_points)
        kk = self.num_neighbors
        if out.shape != (nq, self.feature_size):
            raise ValueError(
                f"out has shape {out.shape}, expected {(nq, self.feature_size)}"
            )
        idx = (
            neighbor_idx
            if neighbor_idx is not None
            else self._neighbor_indices(sample, query_points)
        )

        if workspace is not None:
            pbuf = workspace.buffer(("feat", "pts"), (nq * kk, 3), dtype=np.float64)
            vbuf = workspace.buffer(("feat", "vals"), (nq, kk), dtype=np.float64)
            if sample.points.dtype == np.float64:
                np.take(sample.points, idx.ravel(), axis=0, out=pbuf)
            else:
                pbuf[...] = sample.points[idx.ravel()]
            if sample.values.dtype == np.float64:
                np.take(sample.values, idx, out=vbuf)
            else:
                vbuf[...] = sample.values[idx]
        else:
            pbuf = np.asarray(sample.points, dtype=np.float64)[idx.ravel()]
            vbuf = sample.values[idx].astype(np.float64)

        # Neighbor coordinates: (pts - origin) / span per neighbor column.
        pts3 = pbuf.reshape(nq, kk, 3)
        for j in range(kk):  # k is 5: a handful of strided block writes
            cols = out[:, 4 * j : 4 * j + 3]
            np.subtract(pts3[:, j, :], normalizer.origin, out=cols)
            cols /= normalizer.span
        # Neighbor values: (v - mean) / std into the strided value columns.
        vbuf -= normalizer.value_mean
        vbuf /= normalizer.value_std
        out[:, 3 : 4 * kk : 4] = vbuf
        # The query's own normalized coordinates fill the last three columns.
        tail = out[:, 4 * kk :]
        np.subtract(query_points, normalizer.origin, out=tail)
        tail /= normalizer.span
        return out

    # ------------------------------------------------------------- targets
    def targets(
        self,
        field: TimestepField,
        flat_indices: np.ndarray,
        normalizer: Normalizer,
    ) -> np.ndarray:
        """Assemble ``(Q, target_size)`` targets from the full field."""
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        scalar = normalizer.normalize_values(field.flat[flat_indices])[:, None]
        if not self.include_gradients:
            return scalar
        grads = field_gradients(field.grid, field.values)[flat_indices]
        return np.concatenate([scalar, normalizer.normalize_gradients(grads)], axis=1)

    # ------------------------------------------------------- training sets
    def training_data(
        self,
        field: TimestepField,
        sample: SampledField,
        normalizer: Normalizer,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inputs/targets over the sample's void locations (Fig 4 workflow)."""
        if field.grid != sample.grid:
            raise ValueError("field and sample must live on the same grid")
        void = sample.void_indices()
        points = field.grid.index_to_position(field.grid.flat_to_multi(void))
        # Training selection keeps the kd-tree's raw neighbor order: no
        # spatial subset ever has to reproduce it, so the padded canonical
        # query (a prediction-path property — see `_neighbor_indices`)
        # would only add cost.
        x = self.features(sample, points, normalizer, canonical=False)
        y = self.targets(field, void, normalizer)
        return x, y

    def fit_normalizer(
        self,
        sample: SampledField,
        field: TimestepField | None = None,
        grid: UniformGrid | None = None,
    ) -> Normalizer:
        """Fit normalization statistics.

        At training time pass ``field`` so gradient scales come from real
        gradients; at inference time the sample alone suffices.
        """
        g = grid if grid is not None else sample.grid
        gradients = None
        if field is not None and self.include_gradients:
            gradients = field_gradients(field.grid, field.values)
        return Normalizer.fit(g, sample.values, gradients)
