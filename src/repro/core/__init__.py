"""The paper's primary contribution: FCNN-based void reconstruction.

Pieces (Sec III of the paper):

* :class:`FeatureExtractor` — for each void location, find the five nearest
  sampled points and assemble the ``[1 x 23]`` input feature vector
  (5 neighbors x (x, y, z, value) + the void's own (x, y, z)); targets are
  the ``[1 x 4]`` vector (scalar + x/y/z gradients), or scalar-only for the
  Fig 8 ablation.
* :class:`Normalizer` — coordinate/value standardization fitted on data
  available at reconstruction time (the sample itself), which is what lets
  one model transfer across sampling rates, timesteps and resolutions.
* :class:`FCNNReconstructor` — train / fine-tune (Case 1 full-layer, Case 2
  last-two-layer) / reconstruct, with checkpointing.
* :class:`ReconstructionPipeline` — end-to-end sample → train →
  reconstruct → score convenience wrapper used by examples and the harness.
"""

from repro.core.features import FeatureExtractor
from repro.core.normalization import Normalizer
from repro.core.reconstructor import FCNNReconstructor, PAPER_HIDDEN_LAYERS
from repro.core.pipeline import PipelineResult, ReconstructionPipeline
from repro.core.ensemble import DeepEnsembleReconstructor, EnsembleReconstruction
from repro.core.multivariate import MultivariateReconstructor, sample_multivariate

__all__ = [
    "FeatureExtractor",
    "Normalizer",
    "FCNNReconstructor",
    "PAPER_HIDDEN_LAYERS",
    "ReconstructionPipeline",
    "PipelineResult",
    "DeepEnsembleReconstructor",
    "EnsembleReconstruction",
    "MultivariateReconstructor",
    "sample_multivariate",
]
