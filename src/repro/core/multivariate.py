"""Multivariate sampling and reconstruction.

The paper's datasets carry many scalar attributes but each experiment
reconstructs one.  In a real in situ deployment all attributes of interest
are stored *at the same sampled locations* (one index set, several value
columns), and each attribute needs its own reconstruction.  This module
packages that workflow:

* :func:`sample_multivariate` — draw one index set (importance computed on
  a driver attribute, per Dutta et al. [22]'s observation that multivariate
  importance should be value-coupled) and materialize a
  :class:`~repro.sampling.base.SampledField` per attribute over it;
* :class:`MultivariateReconstructor` — one FCNN per attribute with shared
  configuration: train / fine-tune / reconstruct all attributes together.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import AnalyticDataset, TimestepField
from repro.grid import UniformGrid
from repro.sampling.base import SampledField, Sampler

__all__ = ["sample_multivariate", "MultivariateReconstructor"]


def sample_multivariate(
    dataset: AnalyticDataset,
    sampler: Sampler,
    fraction: float,
    timestep: int = 0,
    grid: UniformGrid | None = None,
    driver: str | None = None,
    attributes: tuple[str, ...] | None = None,
    seed: int | None = None,
) -> dict[str, SampledField]:
    """One shared-location sample per attribute.

    The sampler's importance criteria run on the ``driver`` attribute
    (default: the dataset's primary one); every attribute is then stored at
    the same selected indices, mirroring how an in situ reducer would write
    a multi-column point cloud.
    """
    attrs = tuple(attributes) if attributes is not None else dataset.attributes
    for a in attrs:
        if a not in dataset.attributes:
            raise ValueError(f"{dataset.name} has no attribute {a!r}")
    driver_name = driver if driver is not None else dataset.attribute
    driver_field = dataset.field(t=timestep, grid=grid, attribute=driver_name)
    base = sampler.sample(driver_field, fraction, seed=seed)

    out: dict[str, SampledField] = {}
    for a in attrs:
        field = dataset.field(t=timestep, grid=grid, attribute=a)
        out[a] = SampledField(
            grid=field.grid,
            indices=base.indices,
            values=field.flat[base.indices],
            fraction=fraction,
            timestep=timestep,
        )
    return out


class MultivariateReconstructor:
    """Per-attribute FCNNs sharing one configuration.

    Each attribute gets its own normalization and weights (value ranges
    differ by orders of magnitude across attributes), trained on the same
    void locations.
    """

    name = "fcnn-multivariate"

    def __init__(self, attributes: tuple[str, ...], seed: int = 0, **model_kwargs) -> None:
        if not attributes:
            raise ValueError("need at least one attribute")
        model_kwargs.pop("seed", None)
        self.models: dict[str, FCNNReconstructor] = {
            a: FCNNReconstructor(seed=seed + i, **model_kwargs)
            for i, a in enumerate(attributes)
        }

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self.models)

    @property
    def is_trained(self) -> bool:
        return all(m.is_trained for m in self.models.values())

    def _check(self, per_attribute: dict) -> None:
        missing = set(self.models) - set(per_attribute)
        if missing:
            raise ValueError(f"missing attributes: {sorted(missing)}")

    def train(
        self,
        fields: dict[str, TimestepField],
        samples: dict[str, SampledField | list[SampledField]],
        epochs: int = 500,
        train_fraction: float = 1.0,
    ) -> dict[str, object]:
        """Train every attribute's model on its field + sample(s)."""
        self._check(fields)
        self._check(samples)
        return {
            a: model.train(fields[a], samples[a], epochs=epochs, train_fraction=train_fraction)
            for a, model in self.models.items()
        }

    def fine_tune(
        self,
        fields: dict[str, TimestepField],
        samples: dict[str, SampledField | list[SampledField]],
        epochs: int = 10,
        strategy: str = "full",
    ) -> dict[str, object]:
        """Case-1/Case-2 fine-tuning for every attribute."""
        self._check(fields)
        self._check(samples)
        return {
            a: model.fine_tune(fields[a], samples[a], epochs=epochs, strategy=strategy)
            for a, model in self.models.items()
        }

    def reconstruct(
        self,
        samples: dict[str, SampledField],
        target_grid: UniformGrid | None = None,
    ) -> dict[str, np.ndarray]:
        """Reconstruct every attribute; returns attribute -> volume."""
        self._check(samples)
        return {
            a: model.reconstruct(samples[a], target_grid=target_grid)
            for a, model in self.models.items()
        }

    # ------------------------------------------------------------ checkpoints
    def save(self, directory: str | Path) -> None:
        """One checkpoint per attribute inside ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for a, model in self.models.items():
            model.save(directory / f"{a}.npz")

    @classmethod
    def load(cls, directory: str | Path) -> "MultivariateReconstructor":
        """Load every ``<attribute>.npz`` checkpoint in ``directory``."""
        directory = Path(directory)
        paths = sorted(directory.glob("*.npz"))
        if not paths:
            raise ValueError(f"{directory}: no attribute checkpoints found")
        out = cls.__new__(cls)
        out.models = {p.stem: FCNNReconstructor.load(p) for p in paths}
        return out
