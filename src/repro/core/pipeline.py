"""End-to-end reconstruction pipeline (Fig 1 workflow).

``ReconstructionPipeline`` wires a dataset, a sampler and any set of
reconstructors together: materialize a timestep, sample it, train the FCNN
(once), reconstruct with every method, and score against the original.
Examples and the experiment harness are thin layers over this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import AnalyticDataset, TimestepField
from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.metrics import ReconstructionScore, score_reconstruction
from repro.sampling.base import SampledField, Sampler
from repro.sampling.importance import MultiCriteriaSampler

__all__ = ["PipelineResult", "ReconstructionPipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """One (method, sample) reconstruction with its metrics and timing."""

    method: str
    fraction: float
    timestep: int
    score: ReconstructionScore
    reconstruct_seconds: float
    num_samples: int
    reconstruction: np.ndarray | None = None

    def as_row(self) -> dict:
        """Flat dict for tabular reporting."""
        row = {
            "method": self.method,
            "fraction": self.fraction,
            "timestep": self.timestep,
            "seconds": self.reconstruct_seconds,
            "num_samples": self.num_samples,
        }
        row.update(self.score.as_dict())
        return row


@dataclass
class ReconstructionPipeline:
    """Sample → (train) → reconstruct → score, for one dataset.

    Parameters
    ----------
    dataset:
        Field generator.
    sampler:
        Defaults to the paper's multi-criteria sampler.
    train_fractions:
        Sampling percentages whose union forms the FCNN's training set
        (paper: 1% + 5%, Fig 7).
    keep_reconstructions:
        Retain the reconstructed volumes in results (memory-hungry; off by
        default).
    """

    dataset: AnalyticDataset
    sampler: Sampler = dataclass_field(default_factory=MultiCriteriaSampler)
    train_fractions: tuple[float, ...] = (0.01, 0.05)
    keep_reconstructions: bool = False

    # ------------------------------------------------------------- sampling
    def field(self, timestep: int = 0, grid: UniformGrid | None = None) -> TimestepField:
        return self.dataset.field(t=timestep, grid=grid)

    def sample(self, field: TimestepField, fraction: float, seed: int | None = None) -> SampledField:
        """Draw a sample; pass ``seed`` for an independent (e.g. test) draw."""
        return self.sampler.sample(field, fraction, seed=seed)

    # ------------------------------------------------------------- training
    def train_fcnn(
        self,
        reconstructor: FCNNReconstructor | None = None,
        timestep: int = 0,
        epochs: int = 500,
        train_fraction: float = 1.0,
        grid: UniformGrid | None = None,
        checkpoint=None,
        resume_from=None,
        health=None,
    ) -> FCNNReconstructor:
        """Train (or retrain) an FCNN on this dataset's training samples.

        ``checkpoint``/``resume_from``/``health`` are forwarded to
        :meth:`FCNNReconstructor.train` (see :mod:`repro.resilience`).
        """
        recon = reconstructor if reconstructor is not None else FCNNReconstructor()
        fld = self.field(timestep, grid=grid)
        samples = [self.sample(fld, f) for f in self.train_fractions]
        recon.train(
            fld,
            samples,
            epochs=epochs,
            train_fraction=train_fraction,
            checkpoint=checkpoint,
            resume_from=resume_from,
            health=health,
        )
        return recon

    # --------------------------------------------------------- reconstruction
    def run_method(
        self,
        method: GridInterpolator | FCNNReconstructor,
        sample: SampledField,
        original: TimestepField,
        target_grid: UniformGrid | None = None,
    ) -> PipelineResult:
        """Reconstruct one sample with one method and score it."""
        t0 = time.perf_counter()
        volume = method.reconstruct(sample, target_grid=target_grid)
        seconds = time.perf_counter() - t0
        return PipelineResult(
            method=method.name,
            fraction=sample.fraction,
            timestep=sample.timestep,
            score=score_reconstruction(original.values, volume),
            reconstruct_seconds=seconds,
            num_samples=sample.num_samples,
            reconstruction=volume if self.keep_reconstructions else None,
        )

    def compare(
        self,
        methods,
        fractions,
        timestep: int = 0,
        grid: UniformGrid | None = None,
    ) -> list[PipelineResult]:
        """Cross product of methods × sampling fractions on one timestep."""
        fld = self.field(timestep, grid=grid)
        results: list[PipelineResult] = []
        for fraction in fractions:
            sample = self.sample(fld, fraction)
            for method in methods:
                results.append(self.run_method(method, sample, fld))
        return results
