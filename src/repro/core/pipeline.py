"""End-to-end reconstruction pipeline (Fig 1 workflow).

``ReconstructionPipeline`` wires a dataset, a sampler and any set of
reconstructors together: materialize a timestep, sample it, train the FCNN
(once), reconstruct with every method, and score against the original.
Examples and the experiment harness are thin layers over this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import AnalyticDataset, TimestepField
from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.metrics import ReconstructionScore, score_reconstruction
from repro.obs import counter as obs_counter
from repro.obs import record_event, span
from repro.perf.campaign import (
    CampaignScheduler,
    CampaignStats,
    GeometryCache,
    make_reconstruction_sink,
)
from repro.perf.weights import restore_weights, snapshot_weights
from repro.resilience.journal import CampaignJournal, content_hash
from repro.resilience.report import ReconstructionReport
from repro.resilience.supervise import (
    CampaignInterrupted,
    QuarantineRecord,
    SupervisionPolicy,
    WorkerSupervisor,
)
from repro.sampling.base import SampledField, Sampler
from repro.sampling.importance import MultiCriteriaSampler

__all__ = ["PipelineResult", "CampaignResult", "ReconstructionPipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """One (method, sample) reconstruction with its metrics and timing."""

    method: str
    fraction: float
    timestep: int
    score: ReconstructionScore
    reconstruct_seconds: float
    num_samples: int
    reconstruction: np.ndarray | None = None

    def as_row(self) -> dict:
        """Flat dict for tabular reporting."""
        row = {
            "method": self.method,
            "fraction": self.fraction,
            "timestep": self.timestep,
            "seconds": self.reconstruct_seconds,
            "num_samples": self.num_samples,
        }
        row.update(self.score.as_dict())
        return row


@dataclass(frozen=True)
class CampaignResult:
    """A multi-timestep campaign run (:meth:`ReconstructionPipeline.run_campaign`)."""

    rows: list[dict]                     # per-timestep metrics, in timestep order
    stats: CampaignStats                 # stage occupancy / wall accounting
    reconstructions: list[np.ndarray] | None = None
    #: poison timesteps completed in degraded form (supervision enabled)
    quarantined: tuple[QuarantineRecord, ...] = ()
    #: timesteps skipped because the journal proved them already emitted
    resumed: int = 0
    #: spatial decomposition used (None = unsharded)
    shards: tuple[int, int, int] | None = None
    #: halo width (cells) of the decomposition (None = unsharded)
    halo: int | None = None

    @property
    def finetune_seconds(self) -> float:
        """Total epoch time spent fine-tuning (the irreducible sequential core)."""
        return sum(row["finetune_seconds"] for row in self.rows)


@dataclass
class ReconstructionPipeline:
    """Sample → (train) → reconstruct → score, for one dataset.

    Parameters
    ----------
    dataset:
        Field generator.
    sampler:
        Defaults to the paper's multi-criteria sampler.
    train_fractions:
        Sampling percentages whose union forms the FCNN's training set
        (paper: 1% + 5%, Fig 7).
    keep_reconstructions:
        Retain the reconstructed volumes in results (memory-hungry; off by
        default).
    """

    dataset: AnalyticDataset
    sampler: Sampler = dataclass_field(default_factory=MultiCriteriaSampler)
    train_fractions: tuple[float, ...] = (0.01, 0.05)
    keep_reconstructions: bool = False
    geometry_cache: GeometryCache = dataclass_field(default_factory=GeometryCache)

    # ------------------------------------------------------------- sampling
    def field(self, timestep: int = 0, grid: UniformGrid | None = None) -> TimestepField:
        return self.dataset.field(t=timestep, grid=grid)

    def sample(self, field: TimestepField, fraction: float, seed: int | None = None) -> SampledField:
        """Draw a sample; pass ``seed`` for an independent (e.g. test) draw."""
        return self.sampler.sample(field, fraction, seed=seed)

    # ------------------------------------------------------------- training
    def train_fcnn(
        self,
        reconstructor: FCNNReconstructor | None = None,
        timestep: int = 0,
        epochs: int = 500,
        train_fraction: float = 1.0,
        grid: UniformGrid | None = None,
        checkpoint=None,
        resume_from=None,
        health=None,
    ) -> FCNNReconstructor:
        """Train (or retrain) an FCNN on this dataset's training samples.

        ``checkpoint``/``resume_from``/``health`` are forwarded to
        :meth:`FCNNReconstructor.train` (see :mod:`repro.resilience`).
        """
        recon = reconstructor if reconstructor is not None else FCNNReconstructor()
        fld = self.field(timestep, grid=grid)
        samples = [self.sample(fld, f) for f in self.train_fractions]
        recon.train(
            fld,
            samples,
            epochs=epochs,
            train_fraction=train_fraction,
            checkpoint=checkpoint,
            resume_from=resume_from,
            health=health,
        )
        return recon

    # --------------------------------------------------------- reconstruction
    def run_method(
        self,
        method: GridInterpolator | FCNNReconstructor,
        sample: SampledField,
        original: TimestepField,
        target_grid: UniformGrid | None = None,
    ) -> PipelineResult:
        """Reconstruct one sample with one method and score it."""
        t0 = time.perf_counter()
        volume = method.reconstruct(sample, target_grid=target_grid)
        seconds = time.perf_counter() - t0
        return PipelineResult(
            method=method.name,
            fraction=sample.fraction,
            timestep=sample.timestep,
            score=score_reconstruction(original.values, volume),
            reconstruct_seconds=seconds,
            num_samples=sample.num_samples,
            reconstruction=volume if self.keep_reconstructions else None,
        )

    def compare(
        self,
        methods,
        fractions,
        timestep: int = 0,
        grid: UniformGrid | None = None,
    ) -> list[PipelineResult]:
        """Cross product of methods × sampling fractions on one timestep."""
        fld = self.field(timestep, grid=grid)
        results: list[PipelineResult] = []
        for fraction in fractions:
            sample = self.sample(fld, fraction)
            for method in methods:
                results.append(self.run_method(method, sample, fld))
        return results

    # -------------------------------------------------------------- campaign
    def run_campaign(
        self,
        reconstructor: FCNNReconstructor,
        timesteps,
        fraction: float,
        *,
        finetune_epochs: int = 10,
        finetune_strategy: str = "full",
        batched_finetune: bool = False,
        finetune_batch: int = 0,
        pipeline: bool = True,
        warm_pool: bool = True,
        max_workers: int | None = None,
        num_chunks: int | None = None,
        depth: int = 1,
        shards=None,
        halo: int | None = None,
        shard_scope: str = "global",
        journal=None,
        resume: bool = False,
        supervision: SupervisionPolicy | WorkerSupervisor | None = None,
        interrupt=None,
        on_stage=None,
    ) -> CampaignResult:
        """Rolling fine-tune + reconstruct over a stream of timesteps (Fig 11).

        Reconstruction locations are drawn **once** at the first timestep
        (``fraction`` of the grid) and their values refreshed per timestep
        — so all timesteps share one :class:`~repro.perf.CampaignGeometry`
        and the warm pool ships geometry + base weights exactly once.
        ``reconstructor`` must already be (pre)trained (see
        :meth:`train_fcnn`); per timestep it is fine-tuned on fresh
        ``train_fractions`` draws, its weights published as a bit-exact XOR
        delta, and the timestep reconstructed and scored against the
        original field.

        ``pipeline=True`` overlaps the stages on a
        :class:`~repro.perf.CampaignScheduler` (fine-tuning stays strictly
        sequential); ``warm_pool=True`` reconstructs on a
        :class:`~repro.perf.WarmReconstructionPool` (falling back to the
        in-process sink when shared memory is unavailable).  Every
        ``(pipeline, warm_pool)`` combination produces **bit-identical**
        reconstructions and scores.

        ``batched_finetune=True`` switches the fine-tune stage to the
        :mod:`repro.nn.batched` engine: timesteps are grouped into blocks
        of ``finetune_batch`` (0 = all timesteps in one block) and each
        block's models advance together through fused stacked matmuls via
        :meth:`FCNNReconstructor.fine_tune_batch`.  Semantics change
        deliberately: every timestep fine-tunes **from the pretrained
        base** (the paper's transfer setup, enabling per-timestep partial
        checkpoints) instead of rolling the weights forward timestep to
        timestep, so batched rows differ from serial rows by design.
        Batched results are *block-size invariant* — any
        ``finetune_batch`` (and any pipeline/warm_pool combination)
        produces bit-identical reconstructions — and journal/resume keeps
        its per-timestep granularity (one weight sidecar per timestep,
        sliced out of the stack).

        ``shards`` (an ``"AxBxC"`` spec or 3-tuple) decomposes the grid
        spatially (:mod:`repro.shard`): reconstruction fans out one task
        per shard chunk over the shm transport, each shard seeing only the
        samples in its halo-extended box (``halo`` cells; default
        :func:`~repro.shard.suggest_halo` for the kNN stencil).  With
        ``shard_scope="global"`` (default) fine-tuning is unchanged — one
        model per timestep — and output is **bit-identical** to the
        unsharded campaign whenever the halo holds the padded kNN stencil
        (verify with :meth:`~repro.shard.ShardedCampaignGeometry.seam_check`).
        ``shard_scope="local"`` additionally trains one model per
        (timestep, shard) on shard-local data (requires
        ``batched_finetune=True``; SNR parity, not bit-identity).  The
        shard geometry joins the journal config, so a sharded journal
        refuses an unsharded resume and vice versa.

        Crash safety (see :mod:`repro.resilience` and docs/RESILIENCE.md):

        * ``journal`` — a path (or open
          :class:`~repro.resilience.journal.CampaignJournal`): every stage
          completion is durably recorded; with ``resume=True`` the
          contiguous already-emitted prefix is skipped bit-identically
          (rows replayed from the journal, model weights restored from the
          last completed timestep's atomic state sidecar; skipped
          timesteps contribute ``None`` to ``reconstructions``).
        * ``supervision`` — a
          :class:`~repro.resilience.supervise.SupervisionPolicy` (or
          prepared :class:`~repro.resilience.supervise.WorkerSupervisor`):
          per-stage deadlines recycle a hung pool, and a "poison" timestep
          whose reconstruct keeps failing (or whose fine-tune raises —
          weights are rolled back) is quarantined as degraded
          nearest-neighbor output instead of aborting the campaign.
        * ``interrupt`` — a
          :class:`~repro.resilience.supervise.GracefulInterrupt`: on
          SIGTERM/SIGINT the scheduler drains in-flight work, the journal
          gets a resume manifest, and
          :class:`~repro.resilience.supervise.CampaignInterrupted` is
          raised.
        * ``on_stage`` — optional ``fn(stage, timestep)`` called as each
          stage starts (the chaos harness's injection point).
        """
        if not reconstructor.is_trained:
            raise RuntimeError(
                "run_campaign needs a (pre)trained reconstructor; call train_fcnn() first"
            )
        shard_counts = None
        if shards is not None:
            from repro.shard import SHARD_SCOPES, parse_shards, suggest_halo

            shard_counts = parse_shards(shards)
            if shard_scope not in SHARD_SCOPES:
                raise ValueError(
                    f"shard_scope must be one of {SHARD_SCOPES}, got {shard_scope!r}"
                )
            if shard_scope == "local" and not batched_finetune:
                raise ValueError(
                    "shard_scope='local' trains one model per (timestep, shard) "
                    "through the batched engine; pass batched_finetune=True"
                )
            if halo is None:
                halo = suggest_halo(reconstructor.extractor.num_neighbors, fraction)
            halo = int(halo)
        elif halo is not None:
            raise ValueError("halo requires shards")
        steps = [int(t) for t in timesteps]
        if not steps:
            return CampaignResult(rows=[], stats=CampaignStats(0, pipeline, 0.0, 0.0, 0.0, 0.0))

        wal, own_wal = None, False
        if journal is not None:
            if isinstance(journal, CampaignJournal):
                wal = journal
            else:
                config = {
                    "kind": "run_campaign",
                    "dataset": getattr(self.dataset, "name", type(self.dataset).__name__),
                    "fraction": float(fraction),
                    "timesteps": steps,
                    "train_fractions": [float(f) for f in self.train_fractions],
                    "finetune_epochs": int(finetune_epochs),
                    "finetune_strategy": str(finetune_strategy),
                }
                if batched_finetune:
                    # Only present in batched journals: a serial journal
                    # stays resumable by a serial run, and a batched resume
                    # of a serial journal (different trajectories) is
                    # rejected as a config mismatch.
                    config["batched_finetune"] = True
                if shard_counts is not None:
                    # Same conditional-key pattern: shard geometry in the
                    # header makes a sharded<->unsharded (or differently
                    # sharded) resume a config mismatch, refused up front.
                    config["shards"] = list(shard_counts)
                    config["halo"] = halo
                    if shard_scope != "global":
                        config["shard_scope"] = shard_scope
                wal = CampaignJournal(journal, config=config, resume=resume)
                own_wal = True

        # The resume plan: the contiguous prefix whose terminal records are
        # durable.  Computed whenever a journal is present (trivially empty
        # for a fresh one) so `campaign.resume.plan` is comparable across
        # fresh and resumed run records.
        skipped_rows: list[dict] = []
        steps_to_run = steps
        if wal is not None:
            with span("campaign.resume.plan"):
                plan = wal.plan(steps)
            completed = list(plan.completed) if resume else []
            if completed:
                if not batched_finetune:
                    # Serial fine-tunes roll forward; the batched engine
                    # derives every timestep from the unchanged base, so
                    # there is nothing to restore.
                    restore_weights(reconstructor.model, wal.load_state(completed[-1]))
                skipped_rows = [dict(p["row"]) for p in plan.payloads]
                steps_to_run = list(plan.remaining)
                obs_counter("campaign.resume.skipped").inc(len(completed))
            record_event(
                "campaign.resume.planned",
                resume=bool(resume),
                skipped=len(completed),
                remaining=len(steps_to_run),
            )

        field0 = self.field(steps[0])
        geometry = self.geometry_cache.get(
            self.sample(field0, fraction), dtype=reconstructor.dtype_policy.compute
        )
        shard_plan = None
        if shard_counts is not None:
            from repro.shard import ShardPlan, ShardedCampaignGeometry, make_shard_sink

            shard_plan = ShardPlan.create(geometry.grid, shard_counts, halo)
            sharded = ShardedCampaignGeometry(shard_plan, geometry)
            sink = make_shard_sink(
                sharded,
                {"fcnn": reconstructor},
                max_workers=max_workers,
                num_chunks=num_chunks,
                slots=depth + 1,
                scope=shard_scope,
                warm_pool=warm_pool,
            )
        else:
            sink = make_reconstruction_sink(
                geometry,
                {"fcnn": reconstructor},
                max_workers=max_workers,
                num_chunks=num_chunks,
                slots=depth + 1,
                warm_pool=warm_pool,
            )
        train_shell = geometry.shell()
        # Sharded runs stamp the shard coordinate system onto per-timestep
        # journal records (the header already pins counts + halo).
        shard_coords = {"shards": shard_plan.num_shards} if shard_plan is not None else {}

        sup: WorkerSupervisor | None = None
        if supervision is not None:
            sup = (
                supervision
                if isinstance(supervision, WorkerSupervisor)
                else WorkerSupervisor(supervision)
            )
            pool_executor = getattr(sink, "executor", None)
            if pool_executor is not None:
                if sup.policy.max_respawns is not None:
                    pool_executor.max_respawns = sup.policy.max_respawns
                if sup.on_stall is None:
                    # A stalled reconstruct means a wedged worker: replace
                    # the pool (bounded by the respawn budget above).
                    sup.on_stall = lambda stage, t, elapsed: pool_executor.recycle("stall")
            sup.start()

        def materialize(t: int) -> TimestepField:
            if on_stage is not None:
                on_stage("materialize", t)
            fld = field0 if t == steps[0] else self.field(t)
            if wal is not None:
                wal.record(t, "sampled", field_sha=content_hash(fld.values))
            return fld

        def process(t: int, fld: TimestepField):
            if on_stage is not None:
                on_stage("process", t)
            geometry.refresh(train_shell, fld)
            train = [self.sample(fld, f) for f in self.train_fractions]
            stale: str | None = None
            if sup is None:
                finetune_seconds = reconstructor.fine_tune(
                    fld, train, epochs=finetune_epochs, strategy=finetune_strategy
                ).total_seconds
            else:
                # Fine-tuning is deterministic, so retrying a failure is
                # futile — roll back to the entering weights and carry on
                # with them (bounded degradation, never a dead campaign).
                before = snapshot_weights(reconstructor.model).data
                with sup.stage("process", t):
                    try:
                        finetune_seconds = reconstructor.fine_tune(
                            fld, train, epochs=finetune_epochs, strategy=finetune_strategy
                        ).total_seconds
                    except Exception as exc:
                        if not sup.policy.quarantine:
                            raise
                        restore_weights(reconstructor.model, before)
                        sup.quarantine(t, "fine-tune", exc, attempts=1)
                        stale = f"{type(exc).__name__}: {exc}"
                        finetune_seconds = 0.0
            flat = snapshot_weights(reconstructor.model).data
            if wal is not None:
                wal.save_state(t, flat)
                wal.record(t, "fine-tuned", weights_sha=content_hash(flat), **shard_coords)
            slot = sink.publish(t, train_shell.values, {"fcnn": flat})
            return slot, fld, finetune_seconds, stale

        def reconstruct_one(t: int, fld: TimestepField, slot, finetune_seconds, stale_message):
            if sup is None:
                volume, report = sink.reconstruct(slot, "fcnn")
            else:
                ok, value, attempts = sup.attempt(
                    lambda: sink.reconstruct(slot, "fcnn"), stage="reconstruct", timestep=t
                )
                if ok:
                    volume, report = value
                elif sup.policy.quarantine:
                    sup.quarantine(t, "reconstruct", value, attempts)
                    volume, report = _quarantine_reconstruction(
                        geometry, fld, f"reconstruct quarantined after {attempts} attempt(s)"
                    )
                else:
                    raise value
                if stale_message is not None:
                    report.flag(
                        len(report.degraded),
                        geometry.num_voids,
                        stale_message,
                        "stale-weights",
                    )
            row = {
                "timestep": t,
                "finetune_seconds": finetune_seconds,
                "degraded_points": report.degraded_points,
            }
            row.update(score_reconstruction(fld.values, volume).as_dict())
            if wal is not None:
                wal.record(t, "reconstructed", volume_sha=content_hash(volume), **shard_coords)
                wal.record(t, "emitted", row=_jsonable(row))
            return row, (volume if self.keep_reconstructions else None)

        def emit(t: int, payload):
            if on_stage is not None:
                on_stage("emit", t)
            slot, fld, finetune_seconds, stale = payload
            message = None
            if stale is not None:
                message = (
                    f"fine-tune quarantined ({stale}); reconstructed with "
                    "the previous timestep's weights"
                )
            return reconstruct_one(t, fld, slot, finetune_seconds, message)

        # ------------------------------------------------- batched fine-tune
        # Scheduler items become *block indices* (the scheduler int-casts
        # its items); each block fine-tunes K timesteps from the base in
        # one fused ModelStack, then emits them in timestep order.  The
        # journal keeps per-timestep granularity throughout.
        blocks: list[list[int]] = []
        if batched_finetune and steps_to_run:
            size = int(finetune_batch) if finetune_batch > 0 else len(steps_to_run)
            blocks = [
                steps_to_run[i : i + size] for i in range(0, len(steps_to_run), size)
            ]
        base_flat = snapshot_weights(reconstructor.model).data.copy()

        def materialize_block(block_index: int):
            items = []
            for t in blocks[block_index]:
                if on_stage is not None:
                    on_stage("materialize", t)
                fld = field0 if t == steps[0] else self.field(t)
                train = [self.sample(fld, f) for f in self.train_fractions]
                if wal is not None:
                    wal.record(t, "sampled", field_sha=content_hash(fld.values))
                items.append((t, fld, train))
            return items

        def finetune_block(items):
            """One batched fine-tune call: per-timestep flats + epoch seconds.

            Local shard scope trains one model per (timestep, shard)
            (:func:`repro.shard.fine_tune_shards`) and returns ``(S, W)``
            stacks; otherwise one model per timestep, flat ``(W,)``.
            """
            fields = [fld for _, fld, _ in items]
            trains = [train for _, _, train in items]
            if shard_plan is not None and shard_scope == "local":
                from repro.shard import fine_tune_shards

                flats, grouped = fine_tune_shards(
                    reconstructor,
                    fields,
                    trains,
                    shard_plan,
                    epochs=finetune_epochs,
                    strategy=finetune_strategy,
                )
                return flats, [sum(h.total_seconds for h in hs) for hs in grouped]
            flats, histories = reconstructor.fine_tune_batch(
                fields, trains, epochs=finetune_epochs, strategy=finetune_strategy
            )
            return flats, [h.total_seconds for h in histories]

        def process_block(block_index: int, items):
            ts = [t for t, _, _ in items]
            if on_stage is not None:
                for t in ts:
                    on_stage("process", t)
            stale: str | None = None
            if sup is None:
                flats, seconds = finetune_block(items)
            else:
                with sup.stage("process", ts[0]):
                    try:
                        flats, seconds = finetune_block(items)
                    except Exception as exc:
                        if not sup.policy.quarantine:
                            raise
                        # Deterministic training: retrying is futile.  The
                        # base model is untouched (fine_tune_batch never
                        # mutates it), so every member degrades to base
                        # weights and the campaign carries on.
                        for t in ts:
                            sup.quarantine(t, "fine-tune", exc, attempts=1)
                        stale = f"{type(exc).__name__}: {exc}"
                        degraded = base_flat
                        if shard_plan is not None and shard_scope == "local":
                            degraded = np.tile(base_flat, (shard_plan.num_shards, 1))
                        flats = [degraded] * len(ts)
                        seconds = [0.0] * len(ts)
            if wal is not None:
                for t, flat in zip(ts, flats):
                    wal.save_state(t, flat)
                    wal.record(t, "fine-tuned", weights_sha=content_hash(flat), **shard_coords)
            return items, flats, seconds, stale

        def emit_block(block_index: int, payload):
            items, flats, seconds, stale = payload
            message = None
            if stale is not None:
                message = (
                    f"fine-tune quarantined ({stale}); reconstructed with "
                    "the pretrained base weights"
                )
            out = []
            for (t, fld, _), flat, finetune_seconds in zip(items, flats, seconds):
                if on_stage is not None:
                    on_stage("emit", t)
                geometry.refresh(train_shell, fld)
                slot = sink.publish(t, train_shell.values, {"fcnn": flat})
                out.append(reconstruct_one(t, fld, slot, finetune_seconds, message))
            return out

        if batched_finetune:
            scheduler = CampaignScheduler(
                materialize_block,
                process_block,
                emit_block,
                pipeline=pipeline,
                depth=depth,
                interrupt=interrupt,
            )
            items_to_run = list(range(len(blocks)))
        else:
            scheduler = CampaignScheduler(
                materialize, process, emit, pipeline=pipeline, depth=depth, interrupt=interrupt
            )
            items_to_run = steps_to_run
        try:
            emitted = scheduler.run(items_to_run)
        except CampaignInterrupted as exc:
            if batched_finetune:
                # Translate block indices back into timestep coordinates.
                done_steps = [t for bi in exc.completed for t in blocks[bi]]
                next_blocks = blocks[len(exc.completed):]
                exc = CampaignInterrupted(
                    str(exc),
                    completed=tuple(done_steps),
                    next_timestep=next_blocks[0][0] if next_blocks else None,
                )
            if wal is not None:
                done = steps[: len(skipped_rows)] + list(exc.completed)
                wal.write_manifest(
                    reason=f"interrupted (signal {getattr(interrupt, 'signum', None)})",
                    completed=done,
                    remaining=steps[len(done):],
                )
            raise exc
        finally:
            sink.close()
            if sup is not None:
                sup.stop()
            if own_wal and wal is not None:
                wal.close()
        if batched_finetune:
            emitted = [pair for block in emitted for pair in block]
        rows = skipped_rows + [row for row, _ in emitted]
        volumes = None
        if self.keep_reconstructions:
            volumes = [None] * len(skipped_rows) + [vol for _, vol in emitted]
        return CampaignResult(
            rows=rows,
            stats=scheduler.stats,
            reconstructions=volumes,
            quarantined=tuple(sup.quarantined) if sup is not None else (),
            resumed=len(skipped_rows),
            shards=shard_counts,
            halo=halo if shard_counts is not None else None,
        )


def _jsonable(obj):
    """Recursively convert numpy scalars/arrays to JSON-safe Python values.

    Floats survive bit-exactly: ``json`` serializes doubles with
    shortest-round-trip repr, so a journal-replayed row compares equal to
    the row the uninterrupted run would have produced.
    """
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj


def _quarantine_reconstruction(geometry, fld: TimestepField, reason: str):
    """Degraded full-grid output for a poison timestep: samples kept,
    voids filled by nearest-neighbor from the timestep's own samples.

    Deterministic and sink-independent, so a quarantined campaign still
    emits a complete, finite, honestly-reported volume.
    """
    from scipy.spatial import cKDTree

    values = np.ascontiguousarray(fld.values.ravel()[geometry.indices])
    out = geometry.grid.empty_field().ravel()
    out[geometry.indices] = values
    _, nearest = cKDTree(geometry.points).query(geometry.void_points, k=1)
    out[geometry.void_indices] = values[nearest]
    report = ReconstructionReport(total_points=int(geometry.grid.num_points))
    report.fallback_method = "nearest"
    report.flag(0, int(geometry.num_voids), reason, "nearest")
    obs_counter("supervise.quarantine_points").inc(int(geometry.num_voids))
    return out.reshape(geometry.grid.dims), report
