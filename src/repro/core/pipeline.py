"""End-to-end reconstruction pipeline (Fig 1 workflow).

``ReconstructionPipeline`` wires a dataset, a sampler and any set of
reconstructors together: materialize a timestep, sample it, train the FCNN
(once), reconstruct with every method, and score against the original.
Examples and the experiment harness are thin layers over this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import AnalyticDataset, TimestepField
from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.metrics import ReconstructionScore, score_reconstruction
from repro.perf.campaign import (
    CampaignScheduler,
    CampaignStats,
    GeometryCache,
    make_reconstruction_sink,
)
from repro.perf.weights import snapshot_weights
from repro.sampling.base import SampledField, Sampler
from repro.sampling.importance import MultiCriteriaSampler

__all__ = ["PipelineResult", "CampaignResult", "ReconstructionPipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """One (method, sample) reconstruction with its metrics and timing."""

    method: str
    fraction: float
    timestep: int
    score: ReconstructionScore
    reconstruct_seconds: float
    num_samples: int
    reconstruction: np.ndarray | None = None

    def as_row(self) -> dict:
        """Flat dict for tabular reporting."""
        row = {
            "method": self.method,
            "fraction": self.fraction,
            "timestep": self.timestep,
            "seconds": self.reconstruct_seconds,
            "num_samples": self.num_samples,
        }
        row.update(self.score.as_dict())
        return row


@dataclass(frozen=True)
class CampaignResult:
    """A multi-timestep campaign run (:meth:`ReconstructionPipeline.run_campaign`)."""

    rows: list[dict]                     # per-timestep metrics, in timestep order
    stats: CampaignStats                 # stage occupancy / wall accounting
    reconstructions: list[np.ndarray] | None = None

    @property
    def finetune_seconds(self) -> float:
        """Total epoch time spent fine-tuning (the irreducible sequential core)."""
        return sum(row["finetune_seconds"] for row in self.rows)


@dataclass
class ReconstructionPipeline:
    """Sample → (train) → reconstruct → score, for one dataset.

    Parameters
    ----------
    dataset:
        Field generator.
    sampler:
        Defaults to the paper's multi-criteria sampler.
    train_fractions:
        Sampling percentages whose union forms the FCNN's training set
        (paper: 1% + 5%, Fig 7).
    keep_reconstructions:
        Retain the reconstructed volumes in results (memory-hungry; off by
        default).
    """

    dataset: AnalyticDataset
    sampler: Sampler = dataclass_field(default_factory=MultiCriteriaSampler)
    train_fractions: tuple[float, ...] = (0.01, 0.05)
    keep_reconstructions: bool = False
    geometry_cache: GeometryCache = dataclass_field(default_factory=GeometryCache)

    # ------------------------------------------------------------- sampling
    def field(self, timestep: int = 0, grid: UniformGrid | None = None) -> TimestepField:
        return self.dataset.field(t=timestep, grid=grid)

    def sample(self, field: TimestepField, fraction: float, seed: int | None = None) -> SampledField:
        """Draw a sample; pass ``seed`` for an independent (e.g. test) draw."""
        return self.sampler.sample(field, fraction, seed=seed)

    # ------------------------------------------------------------- training
    def train_fcnn(
        self,
        reconstructor: FCNNReconstructor | None = None,
        timestep: int = 0,
        epochs: int = 500,
        train_fraction: float = 1.0,
        grid: UniformGrid | None = None,
        checkpoint=None,
        resume_from=None,
        health=None,
    ) -> FCNNReconstructor:
        """Train (or retrain) an FCNN on this dataset's training samples.

        ``checkpoint``/``resume_from``/``health`` are forwarded to
        :meth:`FCNNReconstructor.train` (see :mod:`repro.resilience`).
        """
        recon = reconstructor if reconstructor is not None else FCNNReconstructor()
        fld = self.field(timestep, grid=grid)
        samples = [self.sample(fld, f) for f in self.train_fractions]
        recon.train(
            fld,
            samples,
            epochs=epochs,
            train_fraction=train_fraction,
            checkpoint=checkpoint,
            resume_from=resume_from,
            health=health,
        )
        return recon

    # --------------------------------------------------------- reconstruction
    def run_method(
        self,
        method: GridInterpolator | FCNNReconstructor,
        sample: SampledField,
        original: TimestepField,
        target_grid: UniformGrid | None = None,
    ) -> PipelineResult:
        """Reconstruct one sample with one method and score it."""
        t0 = time.perf_counter()
        volume = method.reconstruct(sample, target_grid=target_grid)
        seconds = time.perf_counter() - t0
        return PipelineResult(
            method=method.name,
            fraction=sample.fraction,
            timestep=sample.timestep,
            score=score_reconstruction(original.values, volume),
            reconstruct_seconds=seconds,
            num_samples=sample.num_samples,
            reconstruction=volume if self.keep_reconstructions else None,
        )

    def compare(
        self,
        methods,
        fractions,
        timestep: int = 0,
        grid: UniformGrid | None = None,
    ) -> list[PipelineResult]:
        """Cross product of methods × sampling fractions on one timestep."""
        fld = self.field(timestep, grid=grid)
        results: list[PipelineResult] = []
        for fraction in fractions:
            sample = self.sample(fld, fraction)
            for method in methods:
                results.append(self.run_method(method, sample, fld))
        return results

    # -------------------------------------------------------------- campaign
    def run_campaign(
        self,
        reconstructor: FCNNReconstructor,
        timesteps,
        fraction: float,
        *,
        finetune_epochs: int = 10,
        finetune_strategy: str = "full",
        pipeline: bool = True,
        warm_pool: bool = True,
        max_workers: int | None = None,
        num_chunks: int | None = None,
        depth: int = 1,
    ) -> CampaignResult:
        """Rolling fine-tune + reconstruct over a stream of timesteps (Fig 11).

        Reconstruction locations are drawn **once** at the first timestep
        (``fraction`` of the grid) and their values refreshed per timestep
        — so all timesteps share one :class:`~repro.perf.CampaignGeometry`
        and the warm pool ships geometry + base weights exactly once.
        ``reconstructor`` must already be (pre)trained (see
        :meth:`train_fcnn`); per timestep it is fine-tuned on fresh
        ``train_fractions`` draws, its weights published as a bit-exact XOR
        delta, and the timestep reconstructed and scored against the
        original field.

        ``pipeline=True`` overlaps the stages on a
        :class:`~repro.perf.CampaignScheduler` (fine-tuning stays strictly
        sequential); ``warm_pool=True`` reconstructs on a
        :class:`~repro.perf.WarmReconstructionPool` (falling back to the
        in-process sink when shared memory is unavailable).  Every
        ``(pipeline, warm_pool)`` combination produces **bit-identical**
        reconstructions and scores.
        """
        if not reconstructor.is_trained:
            raise RuntimeError(
                "run_campaign needs a (pre)trained reconstructor; call train_fcnn() first"
            )
        steps = [int(t) for t in timesteps]
        if not steps:
            return CampaignResult(rows=[], stats=CampaignStats(0, pipeline, 0.0, 0.0, 0.0, 0.0))
        field0 = self.field(steps[0])
        geometry = self.geometry_cache.get(self.sample(field0, fraction))
        sink = make_reconstruction_sink(
            geometry,
            {"fcnn": reconstructor},
            max_workers=max_workers,
            num_chunks=num_chunks,
            slots=depth + 1,
            warm_pool=warm_pool,
        )
        train_shell = geometry.shell()

        def materialize(t: int) -> TimestepField:
            return field0 if t == steps[0] else self.field(t)

        def process(t: int, fld: TimestepField):
            geometry.refresh(train_shell, fld)
            train = [self.sample(fld, f) for f in self.train_fractions]
            history = reconstructor.fine_tune(
                fld, train, epochs=finetune_epochs, strategy=finetune_strategy
            )
            flat = snapshot_weights(reconstructor.model).data
            slot = sink.publish(t, train_shell.values, {"fcnn": flat})
            return slot, fld, history.total_seconds

        def emit(t: int, payload):
            slot, fld, finetune_seconds = payload
            volume, report = sink.reconstruct(slot, "fcnn")
            row = {
                "timestep": t,
                "finetune_seconds": finetune_seconds,
                "degraded_points": report.degraded_points,
            }
            row.update(score_reconstruction(fld.values, volume).as_dict())
            return row, (volume if self.keep_reconstructions else None)

        scheduler = CampaignScheduler(
            materialize, process, emit, pipeline=pipeline, depth=depth
        )
        try:
            emitted = scheduler.run(steps)
        finally:
            sink.close()
        rows = [row for row, _ in emitted]
        volumes = [vol for _, vol in emitted] if self.keep_reconstructions else None
        return CampaignResult(rows=rows, stats=scheduler.stats, reconstructions=volumes)
