# hot-path
"""The FCNN reconstructor (paper Sec III-C/D/E, Fig 5).

Architecture: 23 inputs → five hidden Dense+ReLU layers sized 512, 256,
128, 64, 16 → linear head with 4 outputs (scalar + x/y/z gradients).
Training: MSE loss, Adam at lr=0.001, mini-batches, 500 epochs for full
training.  Fine-tuning: Case 1 retrains all layers for ~10 epochs; Case 2
freezes everything but the last two Dense layers and retrains for 300–500
epochs, enabling partial (last-two-layer) checkpoints per timestep.

A trained model reconstructs *any* sample of its field: different sampling
percentages (Fig 9), later timesteps (Fig 11) and higher-resolution/
domain-shifted grids (Fig 13) — features are recomputed per sample and
coordinates renormalized per target grid, value scaling stays fixed at the
training fit.
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.normalization import Normalizer
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid
from repro.nn import Adam, MSELoss, Sequential, Trainer, TrainingHistory, WeightedMSELoss, mlp
from repro.nn.batched import BatchedAdam, BatchedTrainer, ModelStack
from repro.nn.serialization import load_model, save_model, save_partial
from repro.obs import counter as obs_counter
from repro.obs import record_event, span
from repro.perf import DtypePolicy, Workspace
from repro.resilience.checkpoint import CheckpointConfig, TrainingCheckpoint
from repro.resilience.health import HealthGuard, NumericalHealthError
from repro.resilience.report import ReconstructionReport
from repro.sampling.base import SampledField

__all__ = ["FCNNReconstructor", "PAPER_HIDDEN_LAYERS"]

#: Fig 5: "five hidden layers of size 512-16"
PAPER_HIDDEN_LAYERS: tuple[int, ...] = (512, 256, 128, 64, 16)


class FCNNReconstructor:
    """Train an FCNN on sampled data and reconstruct full grids from it.

    Parameters
    ----------
    hidden_layers:
        Hidden widths; defaults to the paper's architecture.
    num_neighbors:
        Sampled neighbors per feature vector (paper: 5).
    include_gradients:
        Predict gradients alongside the scalar (paper default; ``False``
        gives the Fig 8 ablation variant).
    learning_rate:
        Adam step size (paper: 0.001).
    batch_size:
        Mini-batch rows.
    gradient_loss_weight:
        Relative MSE weight of each gradient output column versus the
        scalar column.  The gradient head is an auxiliary task (Fig 8); its
        targets are noisier than the scalar's, so down-weighting keeps the
        paper's multi-task benefit without letting gradient error dominate
        the optimization.
    seed:
        Controls weight init and shuffling; same seed → identical run.
    fast_path:
        Route training and inference through a reused
        :class:`repro.perf.Workspace` (allocation-free hot loops, streamed
        chunked inference).  Bit-identical to the slow path when
        ``dtype_policy`` is ``"float64"``; set ``False`` to force the
        allocating seed path.
    dtype_policy:
        Compute dtype for the network (``"float64"`` or ``"float32"``); see
        :class:`repro.perf.DtypePolicy`.  Losses, SNR and reconstruction
        outputs accumulate in float64 regardless.
    """

    name = "fcnn"

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = PAPER_HIDDEN_LAYERS,
        num_neighbors: int = 5,
        include_gradients: bool = True,
        learning_rate: float = 1e-3,
        batch_size: int = 4096,
        gradient_loss_weight: float = 0.1,
        seed: int = 0,
        fast_path: bool = True,
        dtype_policy: str = "float64",
    ) -> None:
        if not hidden_layers:
            raise ValueError("need at least one hidden layer")
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.extractor = FeatureExtractor(
            num_neighbors=num_neighbors, include_gradients=include_gradients
        )
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        if gradient_loss_weight < 0:
            raise ValueError(f"gradient_loss_weight must be >= 0, got {gradient_loss_weight}")
        self.gradient_loss_weight = float(gradient_loss_weight)
        self.seed = int(seed)
        self.fast_path = bool(fast_path)
        self.dtype_policy = DtypePolicy(dtype_policy)
        self._workspace: Workspace | None = None
        # Single-writer guard for the shared Workspace arena: concurrent
        # fine_tune_batch calls on one instance serialize here (ALS002 —
        # arena buffers are keyed by tag, not by caller).
        self._ft_lock = threading.Lock()
        self.model: Sequential | None = None
        self.normalizer: Normalizer | None = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------ plumbing
    def __getstate__(self) -> dict:
        # The fine-tune guard is per-instance runtime state: a copy or an
        # unpickled worker replica gets a fresh, unheld lock.
        state = self.__dict__.copy()
        state["_ft_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ft_lock = threading.Lock()

    @property
    def is_trained(self) -> bool:
        return self.model is not None and self.normalizer is not None

    def _require_trained(self) -> tuple[Sequential, Normalizer]:
        if self.model is None or self.normalizer is None:
            raise RuntimeError("model is not trained; call train() or load() first")
        return self.model, self.normalizer

    def _get_workspace(self) -> Workspace | None:
        """The reconstructor's arena (one per instance), or ``None`` when slow."""
        if not self.fast_path:
            return None
        if self._workspace is None:
            self._workspace = Workspace(dtype=self.dtype_policy.compute_dtype)
        return self._workspace

    def _loss(self):
        if self.extractor.include_gradients:
            w = self.gradient_loss_weight
            return WeightedMSELoss([1.0, w, w, w])
        return MSELoss()

    def _build_model(self) -> Sequential:
        return mlp(
            self.extractor.feature_size,
            list(self.hidden_layers),
            self.extractor.target_size,
            activation="ReLU",
            seed=self.seed,
        )

    @staticmethod
    def _as_sample_list(samples: SampledField | list[SampledField]) -> list[SampledField]:
        if isinstance(samples, SampledField):
            return [samples]
        samples = list(samples)
        if not samples:
            raise ValueError("need at least one sample to train on")
        return samples

    def _training_matrix(
        self,
        field: TimestepField,
        samples: list[SampledField],
        normalizer: Normalizer,
        train_fraction: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for sample in samples:
            x, y = self.extractor.training_data(field, sample, normalizer)
            xs.append(x)
            ys.append(y)
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        if not (0.0 < train_fraction <= 1.0):
            raise ValueError(f"train_fraction must be in (0, 1], got {train_fraction}")
        if train_fraction < 1.0:
            keep = max(1, int(round(train_fraction * len(x))))
            idx = rng.choice(len(x), size=keep, replace=False)
            x, y = x[idx], y[idx]
        return x, y

    # -------------------------------------------------------------- training
    def train(
        self,
        field: TimestepField,
        samples: SampledField | list[SampledField],
        epochs: int = 500,
        train_fraction: float = 1.0,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        checkpoint: CheckpointConfig | None = None,
        resume_from: str | Path | TrainingCheckpoint | None = None,
        health: HealthGuard | None = None,
    ) -> TrainingHistory:
        """Full (pre)training on one timestep's sample(s).

        ``samples`` may be several :class:`SampledField` draws — the paper
        concatenates a 1% and a 5% sample ("1%+5% model", Fig 7) so the
        network sees both sparse and dense neighborhoods.
        ``train_fraction`` sub-samples the assembled training rows
        (Fig 14 / Table II).

        ``checkpoint``, ``resume_from`` and ``health`` are forwarded to
        :meth:`repro.nn.Trainer.fit`: periodic atomic training-state
        checkpoints, bit-exact resume of a killed run (the model is
        deterministically rebuilt from ``seed``, then overwritten by the
        checkpointed state), and NaN/Inf recovery policies.
        """
        sample_list = self._as_sample_list(samples)
        combined_values = np.concatenate([s.values for s in sample_list])
        combined = SampledFieldView(values=combined_values)
        normalizer = Normalizer.fit(
            field.grid,
            combined.values,
            gradients=_field_gradients_cached(field) if self.extractor.include_gradients else None,
        )

        rng = np.random.default_rng(self.seed)
        with span("fcnn.features", samples=len(sample_list)):
            x, y = self._training_matrix(field, sample_list, normalizer, train_fraction, rng)

        self.model = self._build_model()
        # Cast before building the optimizer so Adam's moments match.
        self.dtype_policy.cast_model(self.model)
        self.normalizer = normalizer
        self.history = TrainingHistory()
        trainer = Trainer(
            self.model,
            loss=self._loss(),
            optimizer=Adam(self.model.parameters(), lr=self.learning_rate),
            batch_size=self.batch_size,
            seed=self.seed,
            workspace=self._get_workspace(),
        )
        run = trainer.fit(
            x,
            y,
            epochs=epochs,
            validation=validation,
            checkpoint=checkpoint,
            resume_from=resume_from,
            health=health,
        )
        self.history.extend(run)
        return run

    def fine_tune(
        self,
        field: TimestepField,
        samples: SampledField | list[SampledField],
        epochs: int = 10,
        strategy: str = "full",
        num_trainable: int = 2,
        train_fraction: float = 1.0,
        checkpoint: CheckpointConfig | None = None,
        health: HealthGuard | None = None,
    ) -> TrainingHistory:
        """Adapt a trained model to new data (new timestep / resolution).

        ``strategy="full"`` is the paper's Case 1 (all layers trainable,
        ~10 epochs); ``strategy="last"`` is Case 2 (only the last
        ``num_trainable`` Dense layers trainable, 300–500 epochs, enabling
        partial checkpoints).  Value normalization stays fixed at the
        pretraining fit so checkpoints remain interchangeable.
        """
        model, normalizer = self._require_trained()
        if strategy == "full":
            model.set_all_trainable(True)
        elif strategy == "last":
            model.freeze_all_but_last(num_trainable)
        else:
            raise ValueError(f"strategy must be 'full' or 'last', got {strategy!r}")

        sample_list = self._as_sample_list(samples)
        # Coordinates renormalize to the new field's grid; value scaling is
        # retained from pretraining.
        tuned = dataclasses.replace(
            normalizer,
            origin=np.asarray(field.grid.origin, dtype=np.float64),
            span=_grid_span(field.grid),
        )
        rng = np.random.default_rng(self.seed + 1)
        x, y = self._training_matrix(field, sample_list, tuned, train_fraction, rng)

        trainer = Trainer(
            model,
            loss=self._loss(),
            optimizer=Adam(model.parameters(), lr=self.learning_rate),
            batch_size=self.batch_size,
            seed=self.seed + 1,
            workspace=self._get_workspace(),
        )
        run = trainer.fit(x, y, epochs=epochs, checkpoint=checkpoint, health=health)
        self.history.extend(run)
        model.set_all_trainable(True)
        return run

    def fine_tune_batch(
        self,
        fields: list[TimestepField],
        samples_per_step: list,
        epochs: int = 10,
        strategy: str = "last",
        num_trainable: int = 2,
        train_fraction: float = 1.0,
        prefix_cache: bool = True,
    ) -> tuple[list[np.ndarray], list[TrainingHistory]]:
        """Fine-tune one model per field from the current base, fused.

        The batched counterpart of calling :meth:`fine_tune` once per
        timestep from the same pretrained base: every step gets its own
        weight set, all K advance together through the
        :mod:`repro.nn.batched` engine (one fused matmul per layer per
        batch instead of K serial ones).  Unlike :meth:`fine_tune` this
        does **not** mutate ``self.model`` — the base stays pristine and
        each step's result comes back as a flat weight vector
        (:func:`repro.perf.restore_weights` layout, journal-sidecar
        ready) plus its :class:`~repro.nn.TrainingHistory`.

        ``strategy="last"`` (paper Case 2) additionally enables the
        frozen-prefix activation cache: the frozen layers run once per
        step over the full training slab instead of every batch of every
        epoch.  Pass ``prefix_cache=False`` for the exact serial Case-2
        op sequence (bit-identical to per-step :meth:`fine_tune`).

        Steps whose training matrices disagree in row count are grouped
        into separate stacks (fused batching needs a rectangular slab);
        each member's bits never depend on its group's size.

        **Single-writer:** the call shares the instance's one
        :class:`~repro.perf.Workspace` arena, whose buffers are keyed by
        tag rather than by caller, so concurrent submissions on the same
        instance are serialized on an internal lock (results are
        identical to running them back to back).  For true parallelism
        give each thread its own :meth:`clone`.
        """
        with self._ft_lock:
            return self._fine_tune_batch_locked(
                fields, samples_per_step, epochs, strategy, num_trainable,
                train_fraction, prefix_cache,
            )

    def _fine_tune_batch_locked(
        self,
        fields: list[TimestepField],
        samples_per_step: list,
        epochs: int,
        strategy: str,
        num_trainable: int,
        train_fraction: float,
        prefix_cache: bool,
    ) -> tuple[list[np.ndarray], list[TrainingHistory]]:
        model, normalizer = self._require_trained()
        if strategy not in ("full", "last"):
            raise ValueError(f"strategy must be 'full' or 'last', got {strategy!r}")
        fields = list(fields)
        samples_per_step = list(samples_per_step)
        if len(fields) != len(samples_per_step):
            raise ValueError(
                f"{len(fields)} fields but {len(samples_per_step)} sample groups"
            )
        if not fields:
            raise ValueError("need at least one timestep to fine-tune")

        matrices = []
        with span("fcnn.features.batched", steps=len(fields)):
            for field, samples in zip(fields, samples_per_step):
                sample_list = self._as_sample_list(samples)
                tuned = dataclasses.replace(
                    normalizer,
                    origin=np.asarray(field.grid.origin, dtype=np.float64),
                    span=_grid_span(field.grid),
                )
                rng = np.random.default_rng(self.seed + 1)
                matrices.append(
                    self._training_matrix(field, sample_list, tuned, train_fraction, rng)
                )

        # The batched engine is float64-only; a float32 arena would change
        # the gather dtype, so fall back to the allocating float64 path.
        workspace = self._get_workspace()
        if workspace is not None and workspace.dtype != np.float64:
            workspace = None

        groups: dict[int, list[int]] = {}
        for i, (x, _) in enumerate(matrices):
            groups.setdefault(len(x), []).append(i)
        flats: list[np.ndarray | None] = [None] * len(fields)
        histories: list[TrainingHistory | None] = [None] * len(fields)
        for steps in groups.values():
            stack = ModelStack.from_network(model, k=len(steps))
            if strategy == "last":
                stack.freeze_all_but_last(num_trainable)
            trainer = BatchedTrainer(
                stack,
                loss=self._loss(),
                optimizer=BatchedAdam(stack.parameters(), lr=self.learning_rate),
                batch_size=self.batch_size,
                seed=self.seed + 1,
                workspace=workspace,
                case2_prefix_cache=prefix_cache,
            )
            runs = trainer.fit(
                np.stack([matrices[i][0] for i in steps]),
                np.stack([matrices[i][1] for i in steps]),
                epochs=epochs,
            )
            for member, i in enumerate(steps):
                flats[i] = stack.member_weights(member)
                histories[i] = runs[member]
        return flats, histories

    # --------------------------------------------------------- reconstruction
    def predict_values(
        self,
        sample: SampledField,
        points: np.ndarray,
        grid: UniformGrid | None = None,
    ) -> np.ndarray:
        """Predict (denormalized) scalar values at arbitrary positions.

        With ``fast_path`` the query points stream through the workspace in
        fixed-size blocks: each block's features are written into a reused
        arena buffer (:meth:`FeatureExtractor.features_into`), pushed
        through the network and denormalized straight into the result
        slice, so peak memory is one block rather than the full feature
        matrix.  Block boundaries equal the slow path's prediction batches,
        keeping results bit-identical (``dtype_policy="float64"``).
        """
        model, normalizer = self._require_trained()
        g = grid if grid is not None else sample.grid
        local = dataclasses.replace(
            normalizer,
            origin=np.asarray(g.origin, dtype=np.float64),
            span=_grid_span(g),
        )
        with span("fcnn.predict", queries=len(points), fast=self.fast_path):
            if self.fast_path:
                return self._predict_values_fast(model, sample, points, local)
            x = self.extractor.features(sample, points, local)
            pred = model.predict(x, batch_size=max(self.batch_size, 16384))
            return local.denormalize_values(pred[:, 0])

    def _predict_values_fast(
        self,
        model: Sequential,
        sample: SampledField,
        points: np.ndarray,
        local: Normalizer,
    ) -> np.ndarray:
        """Chunked inference through the reused workspace (see predict_values)."""
        ws = self._get_workspace()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        nq = len(points)
        out = np.empty(nq, dtype=np.float64)
        block = max(self.batch_size, 16384)
        width = self.extractor.feature_size
        # One kd-tree query for the whole call (memoized across calls when
        # the same (sample, points) objects come back — the per-timestep
        # reconstruction loop); blocks below then slice it for free.
        idx = self.extractor._neighbor_indices(sample, points)
        model.attach_workspace(ws)
        model.set_training(False)
        try:
            for start in range(0, nq, block):
                stop = min(start + block, nq)
                feat = ws.buffer(("recon", "feat"), (stop - start, width))
                self.extractor.features_into(
                    sample,
                    points[start:stop],
                    local,
                    feat,
                    workspace=ws,
                    neighbor_idx=idx[start:stop],
                )
                pred = model.forward(feat)
                local.denormalize_values_into(pred[:, 0], out[start:stop])
        finally:
            model.set_training(True)
            model.detach_workspace()
        return out

    def reconstruct(
        self,
        sample: SampledField,
        target_grid: UniformGrid | None = None,
        on_nonfinite: str = "fallback",
        return_report: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, ReconstructionReport]:
        """Reconstruct the full field from a sample (shaped like the grid).

        With ``target_grid`` (Fig 13 upscaling) every grid point is
        predicted; otherwise sampled locations keep their exact stored
        values and only void locations are predicted.

        Non-finite FCNN predictions (a numerically-poisoned model, an
        overflowing feature) are handled per ``on_nonfinite``:
        ``"fallback"`` (default) fills the affected locations by nearest-
        neighbor interpolation from the sample and flags them in the
        report; ``"raise"`` aborts with
        :class:`~repro.resilience.NumericalHealthError`.  Request the
        degradation metadata with ``return_report=True`` — the result
        becomes ``(field, report)``.
        """
        if on_nonfinite not in ("fallback", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'fallback' or 'raise', got {on_nonfinite!r}"
            )
        self._require_trained()
        grid = target_grid if target_grid is not None else sample.grid
        same_grid = target_grid is None or target_grid == sample.grid
        report = ReconstructionReport(
            total_points=int(grid.num_points), fallback_method="nearest"
        )
        with span("fcnn.reconstruct", points=int(grid.num_points)):
            if same_grid:
                out = grid.empty_field().ravel()
                out[sample.indices] = sample.values
                void = sample.void_indices()
                if void.size:
                    # Cached array identity (not just equal values) keeps the
                    # extractor's neighbor-index memo hot across timesteps.
                    points = sample.void_points()
                    out[void] = self._healthy_predictions(
                        sample, points, grid, on_nonfinite, report
                    )
                field = out.reshape(grid.dims)
            else:
                points = grid.points()
                field = self._healthy_predictions(
                    sample, points, grid, on_nonfinite, report
                ).reshape(grid.dims)
        if return_report:
            return field, report
        return field

    def _healthy_predictions(
        self,
        sample: SampledField,
        points: np.ndarray,
        grid: UniformGrid,
        on_nonfinite: str,
        report: ReconstructionReport,
    ) -> np.ndarray:
        """Predict at ``points``, degrading non-finite outputs to nearest-neighbor."""
        pred = self.predict_values(sample, points, grid)
        bad = ~np.isfinite(pred)
        count = int(bad.sum())
        if count == 0:
            return pred
        if on_nonfinite == "raise":
            raise NumericalHealthError(
                f"FCNN produced {count}/{pred.size} non-finite predictions; "
                "the model state is numerically poisoned"
            )
        from scipy.spatial import cKDTree

        pred = pred.copy()
        _, nearest = cKDTree(sample.points).query(points[bad], k=1)
        pred[bad] = sample.values[nearest]
        report.flag(
            len(report.degraded),
            count,
            f"{count}/{pred.size} non-finite FCNN prediction(s)",
            "nearest",
        )
        obs_counter("reconstruct.fcnn.fallback").inc(count)
        record_event(
            "degraded", where="fcnn.predict", count=count, fallback="nearest"
        )
        return pred

    # ------------------------------------------------------------- snapshots
    def snapshot(self):
        """Lightweight learned-state snapshot: ``(weights, normalizer)``.

        Copies only the parameter tensors (plus freeze flags) and keeps a
        reference to the immutable normalizer — unlike
        ``copy.deepcopy(self)``, which also clones the Workspace arenas,
        cached geometry and optimizer-adjacent scratch that are *not* part
        of the learned state.  Pair with :meth:`restore` for rollback
        points, or :meth:`clone` for an independent model.
        """
        model, normalizer = self._require_trained()
        return (model.snapshot(), normalizer)

    def restore(self, snapshot) -> None:
        """Return this model to a :meth:`snapshot`'s learned state, in place."""
        model, _ = self._require_trained()
        weights, normalizer = snapshot
        model.restore(weights)
        self.normalizer = normalizer

    def clone(self) -> "FCNNReconstructor":
        """An independent reconstructor with identical learned state.

        The replacement for per-timestep ``copy.deepcopy(model)`` in the
        rolling fine-tuning loops (Fig 5/11): the clone gets a fresh
        network and its own (empty) Workspace, then copies the weights in
        — so the two models can be trained/reconstructed independently,
        and nothing of the parent's arenas or caches is duplicated.
        Training history carries over; the normalizer (immutable) is
        shared.
        """
        recon = FCNNReconstructor(
            hidden_layers=self.hidden_layers,
            num_neighbors=self.extractor.num_neighbors,
            include_gradients=self.extractor.include_gradients,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            gradient_loss_weight=self.gradient_loss_weight,
            seed=self.seed,
            fast_path=self.fast_path,
            dtype_policy=self.dtype_policy.compute,
        )
        if self.model is not None:
            recon.model = self.model.clone_architecture()
            recon.dtype_policy.cast_model(recon.model)
            recon.model.restore(self.model.snapshot())
        recon.normalizer = self.normalizer
        recon.history.extend(self.history)
        return recon

    # ----------------------------------------------------------- checkpoints
    def save(self, path: str | Path) -> None:
        """Full checkpoint: weights + architecture + normalization stats."""
        model, normalizer = self._require_trained()
        meta = {
            "hidden_layers": list(self.hidden_layers),
            "num_neighbors": self.extractor.num_neighbors,
            "include_gradients": self.extractor.include_gradients,
            "learning_rate": self.learning_rate,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "fast_path": self.fast_path,
            "dtype_policy": self.dtype_policy.compute,
            "normalizer": normalizer.as_dict(),
        }
        save_model(path, model, meta=meta)

    def save_partial(self, path: str | Path, num_layers: int = 2) -> None:
        """Case-2 checkpoint: only the last ``num_layers`` Dense layers."""
        model, normalizer = self._require_trained()
        save_partial(path, model, num_layers, meta={"normalizer": normalizer.as_dict()})

    @classmethod
    def load(cls, path: str | Path) -> "FCNNReconstructor":
        """Restore a reconstructor saved with :meth:`save`."""
        model, meta = load_model(path)
        recon = cls(
            hidden_layers=tuple(meta["hidden_layers"]),
            num_neighbors=int(meta["num_neighbors"]),
            include_gradients=bool(meta["include_gradients"]),
            learning_rate=float(meta["learning_rate"]),
            batch_size=int(meta["batch_size"]),
            seed=int(meta["seed"]),
            fast_path=bool(meta.get("fast_path", True)),
            dtype_policy=str(meta.get("dtype_policy", "float64")),
        )
        recon.model = model
        # Checkpoints store float64 weights; re-apply the compute policy.
        recon.dtype_policy.cast_model(model)
        recon.normalizer = Normalizer.from_dict(meta["normalizer"])
        return recon

    def load_partial(self, path: str | Path) -> None:
        """Graft a Case-2 partial checkpoint onto this trained model."""
        model, _ = self._require_trained()
        from repro.nn.serialization import load_partial as _load_partial

        _load_partial(path, model)


# --------------------------------------------------------------------------
# helpers


class SampledFieldView:
    """Minimal value holder used when blending multiple samples' statistics."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values


def _grid_span(grid: UniformGrid) -> np.ndarray:
    span = (np.asarray(grid.dims, dtype=np.float64) - 1.0) * np.asarray(grid.spacing)
    return np.where(span <= 0, 1.0, span)


def _field_gradients_cached(field: TimestepField) -> np.ndarray:
    from repro.grid import field_gradients

    return field_gradients(field.grid, field.values)
