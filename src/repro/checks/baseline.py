"""Baseline files: grandfathered findings that do not fail the build.

A baseline lets the checker gate CI from day one while legacy findings are
paid down: findings whose fingerprint (path, rule, message — deliberately
not line numbers) matches an entry are reported separately and do not
affect the exit code.  Each entry is consumed at most as many times as it
appears, so *new* instances of a baselined pattern still fail.

This repo's committed baseline (``.repro-checks-baseline.json``) is empty —
keep it that way; fix or explicitly suppress instead of baselining.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.checks.findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Counter | None = None):
        self._fingerprints = Counter(fingerprints or ())

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined), consuming baseline entries."""
        remaining = Counter(self._fingerprints)
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            fp = f.fingerprint()
            if remaining[fp] > 0:
                remaining[fp] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old

    def __len__(self) -> int:
        return sum(self._fingerprints.values())


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text())
    fingerprints = Counter(
        (entry["path"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    )
    return Baseline(fingerprints)


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the given findings as the new baseline."""
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
