"""Baseline files: grandfathered findings that do not fail the build.

A baseline lets the checker gate CI from day one while legacy findings are
paid down: findings whose fingerprint (path, rule, message — deliberately
not line numbers) matches an entry are reported separately and do not
affect the exit code.  Each entry is consumed at most as many times as it
appears, so *new* instances of a baselined pattern still fail.

Two on-disk formats exist:

* **v2** (current) — each entry carries ``family`` and ``severity``
  alongside the fingerprint fields, so dashboards can report baseline
  debt by rule family and tier without re-running the checker.
* **v1** (deprecated) — fingerprint fields only.  Still readable (the
  extra fields never participate in matching) but loading one emits a
  ``DeprecationWarning``; run :func:`migrate_baseline` — or
  ``repro check --baseline FILE --migrate-baseline`` — to upgrade in
  place.

This repo's committed baseline (``.repro-checks-baseline.json``) is empty —
keep it that way; fix or explicitly suppress instead of baselining.
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from pathlib import Path

from repro.checks.findings import Finding, rule_family

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "migrate_baseline",
]

BASELINE_VERSION = 2

#: Severity recorded for v1 entries, which predate tiers.
_V1_SEVERITY = "warning"


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Counter | None = None):
        self._fingerprints = Counter(fingerprints or ())

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined), consuming baseline entries."""
        remaining = Counter(self._fingerprints)
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            fp = f.fingerprint()
            if remaining[fp] > 0:
                remaining[fp] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old

    def __len__(self) -> int:
        return sum(self._fingerprints.values())


def _read(path: Path) -> dict:
    data = json.loads(path.read_text())
    version = data.get("version", 1)
    if version > BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version}; this checker understands "
            f"up to v{BASELINE_VERSION} — upgrade the repro package"
        )
    if version < BASELINE_VERSION:
        warnings.warn(
            f"baseline {path} uses the deprecated v{version} format; "
            "re-write it with 'repro check --baseline FILE --migrate-baseline' "
            "(fingerprints are unchanged, entries gain family/severity)",
            DeprecationWarning,
            stacklevel=3,
        )
    return data


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = _read(p)
    fingerprints = Counter(
        (entry["path"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    )
    return Baseline(fingerprints)


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the given findings as a new v2 baseline."""
    entries = [
        {
            "path": f.path,
            "rule": f.rule,
            "family": f.family,
            "severity": f.severity,
            "message": f.message,
        }
        for f in sorted(findings)
    ]
    _write_entries(path, entries)


def migrate_baseline(path: str | Path) -> bool:
    """Upgrade a baseline file to v2 in place.

    Fingerprints are preserved verbatim; entries gain ``family`` (derived
    from the rule id) and ``severity`` (v1 entries predate tiers and are
    recorded as ``warning``).  Returns True when the file was rewritten,
    False when it was already v2 (or does not exist).
    """
    p = Path(path)
    if not p.exists():
        return False
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        data = _read(p)
    if data.get("version", 1) == BASELINE_VERSION:
        return False
    entries = [
        {
            "path": entry["path"],
            "rule": entry["rule"],
            "family": entry.get("family", rule_family(entry["rule"])),
            "severity": entry.get("severity", _V1_SEVERITY),
            "message": entry["message"],
        }
        for entry in data.get("findings", [])
    ]
    _write_entries(p, entries)
    return True


def _write_entries(path: str | Path, entries: list[dict]) -> None:
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")