"""Runtime sanitizers: dynamic counterparts of the THR/ALS static rules.

The static analyzer (:mod:`repro.checks`) proves what it can from source;
these sanitizers catch what only execution reveals — actual lock
acquisition *order*, actual segment lifecycles, actual buffer overlap:

=====================  ===============================================
:class:`LockOrderSanitizer`  cyclic lock-acquisition order (latent
                             deadlocks) — raises
                             :class:`LockOrderViolation` on exit
:class:`ShmLeakTracker`      shared-memory segments created but never
                             unlinked — raises :class:`ShmLeakError`,
                             unlinking the leaks first by default
:class:`AliasGuard`          ``np.matmul``/``np.dot`` called with an
                             ``out=`` aliasing an input — raises
                             :class:`AliasingViolation` at the call
=====================  ===============================================

Each is an independent context manager; :func:`sanitize` stacks them.
The test suite wires them in via ``pytest --sanitize`` (see
``tests/conftest.py``); individual tests that *deliberately* violate an
invariant opt out with ``@pytest.mark.no_sanitize``.  All three work by
monkeypatching process-global entry points, so nesting the same
sanitizer twice is unsupported and activation is not thread-safe —
activate on the main thread before spawning workers.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from repro.checks.sanitizers.aliasguard import AliasGuard, AliasingViolation
from repro.checks.sanitizers.lockorder import LockOrderSanitizer, LockOrderViolation
from repro.checks.sanitizers.shmtrack import ShmLeakError, ShmLeakTracker

__all__ = [
    "AliasGuard",
    "AliasingViolation",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "ShmLeakError",
    "ShmLeakTracker",
    "sanitize",
]


@contextmanager
def sanitize(
    lock_order: bool = True,
    shm_leaks: bool = True,
    aliasing: bool = True,
    shm_cleanup: bool = True,
):
    """Activate the selected sanitizers for the duration of the block."""
    with ExitStack() as stack:
        if lock_order:
            stack.enter_context(LockOrderSanitizer())
        if shm_leaks:
            stack.enter_context(ShmLeakTracker(cleanup=shm_cleanup))
        if aliasing:
            stack.enter_context(AliasGuard())
        yield