"""Array-aliasing guard: runtime twin of the static ``ALS001`` rule.

``np.matmul(a, b, out=x)`` with ``x`` overlapping ``a`` or ``b`` reads
memory it is concurrently writing — numpy does not reject it, the result
is silently wrong, and whether a test notices depends on shapes and
BLAS kernel choice.  The guard patches the alias-unsafe entry points the
repo's fused kernels use (``np.matmul``, ``np.dot``) to check, before
every call, that the ``out=`` buffer shares no memory with any input
operand (:func:`np.shares_memory`), raising :class:`AliasingViolation`
at the exact offending call.

Elementwise ufuncs are deliberately unguarded: in-place elementwise
rewriting (``np.multiply(x, m, out=x)``) is well-defined and is the
fast path's main trick.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AliasGuard", "AliasingViolation"]

_GUARDED = ("matmul", "dot")


class AliasingViolation(RuntimeError):
    """Raised when an ``out=`` buffer aliases a read operand."""


class AliasGuard:
    """Context manager wrapping numpy's contraction kernels with checks."""

    def __init__(self) -> None:
        self._originals: dict[str, object] = {}

    def __enter__(self) -> "AliasGuard":
        for name in _GUARDED:
            original = getattr(np, name)
            self._originals[name] = original
            setattr(np, name, self._wrap(name, original))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for name, original in self._originals.items():
            setattr(np, name, original)
        self._originals.clear()
        return False

    def _wrap(self, name: str, original):
        def guarded(*args, out=None, **kwargs):
            if out is not None:
                outs = out if isinstance(out, tuple) else (out,)
                for buffer in outs:
                    if not isinstance(buffer, np.ndarray):
                        continue
                    for i, operand in enumerate(args):
                        if not isinstance(operand, np.ndarray):
                            continue
                        if np.shares_memory(buffer, operand):
                            raise AliasingViolation(
                                f"np.{name}: out= buffer shares memory with "
                                f"input operand {i}; contraction kernels "
                                "need disjoint buffers (static rule ALS001)"
                            )
                kwargs["out"] = out
            return original(*args, **kwargs)

        guarded.__name__ = name
        return guarded