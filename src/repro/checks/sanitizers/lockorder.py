"""Lock-order sanitizer: detect cyclic lock-acquisition order at runtime.

Two threads that take the same pair of locks in opposite orders deadlock
only under the right interleaving — a test suite can pass for months on
a latent inversion.  The static rules (``THR0xx``) cannot see dynamic
acquisition *order*, so this sanitizer records it:

* :func:`threading.Lock` / :func:`threading.RLock` /
  :class:`threading.Semaphore` / :class:`threading.BoundedSemaphore` are
  patched to return proxies that note, per thread, which lock is
  acquired while which others are held;
* every "A held while acquiring B" pair becomes an edge A→B in a global
  order graph; an edge that closes a cycle is an ordering inversion;
* violations are collected (never raised inside the acquiring thread —
  that could itself deadlock the program under test) and raised as
  :class:`LockOrderViolation` when the sanitizer context exits.

Locks created *by the stdlib's own machinery* (``threading.py``,
``queue.py``, ``sched.py``) are left unwrapped: ``Condition`` and
``Queue`` internals have lock-identity expectations a proxy must not
disturb, and their ordering is the stdlib's problem, not this repo's.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["LockOrderSanitizer", "LockOrderViolation"]

#: Lock creations whose caller lives in one of these files are not wrapped.
_STDLIB_CALLERS = ("threading.py", "queue.py", "sched.py", "logging/__init__.py")


class LockOrderViolation(RuntimeError):
    """Raised when lock acquisition orders form a cycle."""


class _LockProxy:
    """Transparent wrapper recording acquire/release against the order graph."""

    def __init__(self, inner, label: str, sanitizer: "LockOrderSanitizer") -> None:
        self._inner = inner
        self._label = label
        self._sanitizer = sanitizer

    # -- the protocol surface the repo's code uses ------------------------
    def acquire(self, *args, **kwargs):
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._sanitizer._note_acquire(self)
        return got

    def release(self, *args, **kwargs):
        self._sanitizer._note_release(self)
        return self._inner.release(*args, **kwargs)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def locked(self):
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized {self._label}>"


class LockOrderSanitizer:
    """Context manager wiring the order recorder into ``threading``."""

    def __init__(self) -> None:
        self._graph: dict[int, set[int]] = {}     # id(proxy) -> successors
        self._labels: dict[int, str] = {}
        self._edge_sites: dict[tuple[int, int], str] = {}
        self._held = threading.local()
        self._mutex = threading.Lock()            # guards graph mutation
        self.violations: list[str] = []
        self._originals: dict[str, object] = {}

    # ------------------------------------------------------------ patching
    def __enter__(self) -> "LockOrderSanitizer":
        for name in ("Lock", "RLock", "Semaphore", "BoundedSemaphore"):
            self._originals[name] = getattr(threading, name)
            setattr(threading, name, self._factory(name, self._originals[name]))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for name, original in self._originals.items():
            setattr(threading, name, original)
        self._originals.clear()
        if exc_type is None and self.violations:
            raise LockOrderViolation(
                "cyclic lock-acquisition order detected:\n  "
                + "\n  ".join(self.violations)
            )
        return False

    def _factory(self, kind: str, original):
        def make(*args, **kwargs):
            inner = original(*args, **kwargs)
            caller = sys._getframe(1).f_code.co_filename
            if caller.endswith(_STDLIB_CALLERS):
                return inner
            frame = sys._getframe(1)
            label = f"{kind}@{frame.f_code.co_filename}:{frame.f_lineno}"
            proxy = _LockProxy(inner, label, self)
            with self._mutex:
                self._labels[id(proxy)] = label
            return proxy

        return make

    # ----------------------------------------------------------- recording
    def _stack(self) -> list[int]:
        if not hasattr(self._held, "stack"):
            self._held.stack = []
        return self._held.stack

    def _note_acquire(self, proxy: _LockProxy) -> None:
        stack = self._stack()
        pid = id(proxy)
        if stack:
            held = stack[-1]
            if held != pid:  # re-entrant RLock acquire is not an edge
                with self._mutex:
                    self._record_edge(held, pid)
        stack.append(pid)

    def _note_release(self, proxy: _LockProxy) -> None:
        stack = self._stack()
        pid = id(proxy)
        # Locks are usually released LIFO, but tolerate out-of-order.
        if pid in stack:
            stack.reverse()
            stack.remove(pid)
            stack.reverse()

    def _record_edge(self, a: int, b: int) -> None:
        edges = self._graph.setdefault(a, set())
        if b in edges:
            return
        if self._reaches(b, a):
            cycle = (
                f"'{self._labels.get(b, '?')}' is acquired while holding "
                f"'{self._labels.get(a, '?')}' here, but the opposite order "
                "was also observed"
            )
            self.violations.append(cycle)
        edges.add(b)

    def _reaches(self, start: int, goal: int) -> bool:
        seen: set[int] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._graph.get(node, ()))
        return False