"""Shared-memory leak tracker: fail tests that strand OS segments.

A leaked ``SharedMemory`` segment outlives the process — ``/dev/shm``
fills up across a test session and the resource tracker spews warnings
long after the culprit test finished.  The static ``THR002`` rule proves
lifecycles it can see; this tracker catches the rest at runtime:

* ``SharedMemory.__init__`` is patched to register every segment this
  process *creates* (``create=True``) with its creation site;
* ``unlink`` deregisters — unlinking is the create-side release act
  (``close`` only drops this process's mapping);
* on context exit, surviving registrations raise :class:`ShmLeakError`
  listing each leaked segment and where it was created.  With
  ``cleanup=True`` (the default) the leaked segments are unlinked first,
  so one failing test cannot starve the rest of the session.
"""

from __future__ import annotations

import sys
import threading
from multiprocessing import shared_memory

__all__ = ["ShmLeakTracker", "ShmLeakError"]


class ShmLeakError(RuntimeError):
    """Raised when created shared-memory segments were never unlinked."""


class ShmLeakTracker:
    """Context manager registering segment creations against unlinks."""

    def __init__(self, cleanup: bool = True) -> None:
        self.cleanup = cleanup
        self._live: dict[str, str] = {}   # segment name -> creation site
        self._mutex = threading.Lock()
        self._orig_init = None
        self._orig_unlink = None

    def __enter__(self) -> "ShmLeakTracker":
        tracker = self
        self._orig_init = shared_memory.SharedMemory.__init__
        self._orig_unlink = shared_memory.SharedMemory.unlink
        orig_init = self._orig_init
        orig_unlink = self._orig_unlink

        def init(shm_self, *args, **kwargs):
            orig_init(shm_self, *args, **kwargs)
            created = kwargs.get("create", args[1] if len(args) > 1 else False)
            if created:
                frame = sys._getframe(1)
                site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
                with tracker._mutex:
                    tracker._live[shm_self.name] = site

        def unlink(shm_self):
            with tracker._mutex:
                tracker._live.pop(shm_self.name, None)
            return orig_unlink(shm_self)

        shared_memory.SharedMemory.__init__ = init
        shared_memory.SharedMemory.unlink = unlink
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        shared_memory.SharedMemory.__init__ = self._orig_init
        shared_memory.SharedMemory.unlink = self._orig_unlink
        with self._mutex:
            leaked = dict(self._live)
            self._live.clear()
        if self.cleanup:
            for name in leaked:
                try:
                    seg = shared_memory.SharedMemory(name=name)
                    seg.close()
                    seg.unlink()
                except (FileNotFoundError, OSError):  # already gone: fine
                    pass
        if leaked and exc_type is None:
            rows = [f"'{name}' created at {site}" for name, site in sorted(leaked.items())]
            raise ShmLeakError(
                "shared-memory segment(s) never unlinked:\n  " + "\n  ".join(rows)
            )
        return False

    @property
    def live(self) -> dict[str, str]:
        """Segments currently registered as created-but-not-unlinked."""
        with self._mutex:
            return dict(self._live)