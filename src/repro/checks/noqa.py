"""Inline suppression comments: ``# repro: noqa[RULE-ID]``.

Suppressions are parsed from real comment tokens (via :mod:`tokenize`), so
the directive can never be confused with string contents.  Two forms:

* ``# repro: noqa[RNG001]`` / ``# repro: noqa[RNG001, DIV001]`` —
  suppress the listed rules on that line;
* ``# repro: noqa`` — suppress every rule on that line (discouraged;
  prefer naming the rule so the suppression dies with it).

A finding is suppressed when a directive sits on the finding's line.  For
statements spanning several physical lines the directive must sit on the
line the rule reports (the node's ``lineno``).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterator

__all__ = ["NoqaDirectives", "parse_noqa"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?",
)

# Sentinel rule-set meaning "suppress everything on this line".
_ALL = frozenset({"*"})


class NoqaDirectives:
    """Per-line suppression table for one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]):
        self._by_line = by_line

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is _ALL or "*" in rules or rule in rules

    def listed_codes(self) -> Iterator[tuple[int, str]]:
        """Every explicitly named rule code, as ``(line, code)`` pairs.

        Blanket ``# repro: noqa`` directives name no codes and are not
        yielded.  The engine validates these against the known rule ids
        and reports unknown codes as ``NOQA001`` notes — a typo'd code
        suppresses nothing, silently, which is worse than a finding.
        """
        for line in sorted(self._by_line):
            rules = self._by_line[line]
            if rules is _ALL:
                continue
            for code in sorted(rules - {"*"}):
                yield line, code

    def __len__(self) -> int:
        return len(self._by_line)


def parse_noqa(source: str) -> NoqaDirectives:
    """Extract all ``# repro: noqa`` directives from ``source``.

    Tolerates source that fails to tokenize (the engine reports the syntax
    error separately); in that case falls back to a line-by-line scan.
    """
    by_line: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for i, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                _collect(text[text.index("#"):], i, by_line)
        return NoqaDirectives(by_line)
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            _collect(tok.string, tok.start[0], by_line)
    return NoqaDirectives(by_line)


def _collect(comment: str, line: int, by_line: dict[int, frozenset[str]]) -> None:
    m = _NOQA_RE.search(comment)
    if m is None:
        return
    listed = m.group("rules")
    if listed is None:
        by_line[line] = _ALL
        return
    rules = frozenset(r.strip().upper() for r in listed.split(",") if r.strip())
    if not rules:
        by_line[line] = _ALL
        return
    existing = by_line.get(line, frozenset())
    if existing is _ALL or "*" in existing:
        return
    by_line[line] = existing | rules
