"""Static analysis enforcing the repo's numerical-correctness invariants.

The reproduction's headline numbers (SNR vs sampling fraction, near-constant
reconstruction time, cross-timestep transfer) depend on discipline a normal
test suite cannot see: deterministic RNG threading, float64 end to end, and
guarded metric denominators.  This package machine-checks those conventions
with a small AST rule engine:

=======  ==========================================================
RNG001   no legacy global-state ``np.random`` API
RNG002   no unseeded ``np.random.default_rng()``
DT001    explicit dtype at every ``repro.nn`` array boundary
DT002    no float32 downcasts in hot numeric paths
DIV001   metric/analysis divisions carry a visible epsilon guard
REG001   registries and package ``__all__`` exports agree
IMP001   no module-level import cycles
DEF001   no mutable default arguments
ATM001   numpy archive writes are atomic (temp + ``os.replace``)
=======  ==========================================================

Run ``python -m repro.checks src/repro`` (or ``repro check``); suppress a
single finding with ``# repro: noqa[RULE-ID]`` and a comment justifying the
invariant; grandfather legacy findings in a ``--baseline`` file.  See
``docs/API.md`` ("Static analysis") for how to add a rule.
"""

from repro.checks.baseline import Baseline, load_baseline, write_baseline
from repro.checks.config import CheckConfig
from repro.checks.engine import CheckResult, discover_files, module_name_for, run_checks
from repro.checks.findings import Finding, format_json, format_text
from repro.checks.noqa import NoqaDirectives, parse_noqa
from repro.checks.rules import ALL_RULES, ModuleContext, ProjectContext, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckConfig",
    "CheckResult",
    "Finding",
    "ModuleContext",
    "NoqaDirectives",
    "ProjectContext",
    "Rule",
    "discover_files",
    "format_json",
    "format_text",
    "load_baseline",
    "module_name_for",
    "parse_noqa",
    "run_checks",
    "write_baseline",
]
