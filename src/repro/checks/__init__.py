"""Static analysis enforcing the repo's correctness invariants.

The reproduction's headline numbers (SNR vs sampling fraction, near-constant
reconstruction time, cross-timestep transfer) depend on discipline a normal
test suite cannot see: deterministic RNG threading, float64 end to end,
guarded metric denominators — and, since the campaign scheduler went
multi-threaded, lock discipline and buffer-aliasing rules.  This package
machine-checks those conventions with an AST rule engine backed by a
project-wide semantic model (cross-file symbol table + call graph, see
:mod:`repro.checks.analysis`):

=======  ==========================================================
RNG001   no legacy global-state ``np.random`` API
RNG002   no unseeded ``np.random.default_rng()``
DT001    explicit dtype at every ``repro.nn`` array boundary
DT002    no float32 downcasts in hot numeric paths
DIV001   metric/analysis divisions carry a visible epsilon guard
REG001   registries and package ``__all__`` exports agree
IMP001   no module-level import cycles
DEF001   no mutable default arguments
ATM001   numpy archive writes are atomic (temp + ``os.replace``)
PRF001   no allocations inside marked hot loops
THR001   thread targets must not write shared state without a lock
THR002   SharedMemory close()/unlink() provable on all paths
THR003   bare acquire() balanced by release() in a finally
THR004   non-daemon threads must be joined
ALS001   ``out=`` must not alias a read operand of matmul-like ops
ALS002   Workspace arena buffers must not be persisted on ``self``
=======  ==========================================================

Findings carry severity tiers (``error``/``warning``/``note``); the exit
code stays severity-blind (0 clean / 1 findings / 2 usage-or-crash).
Run ``python -m repro.checks src/repro`` (or ``repro check``); emit SARIF
2.1.0 for code scanning with ``--format sarif``; apply mechanical fixes
with ``--fix``; suppress a single finding with ``# repro: noqa[RULE-ID]``
and a comment justifying the invariant; grandfather legacy findings in a
``--baseline`` file (v2 format; ``--migrate-baseline`` upgrades v1).

The sibling :mod:`repro.checks.sanitizers` package provides *runtime*
counterparts — lock-order, shm-leak and aliasing sanitizers enabled under
``pytest --sanitize``.  See ``docs/CHECKS.md`` for the full rule catalog.
"""

from repro.checks.baseline import (
    Baseline,
    load_baseline,
    migrate_baseline,
    write_baseline,
)
from repro.checks.config import CheckConfig
from repro.checks.engine import CheckResult, discover_files, module_name_for, run_checks
from repro.checks.findings import (
    SEVERITIES,
    Finding,
    format_json,
    format_text,
    rule_family,
)
from repro.checks.fixes import FIXABLE_RULES, fix_source
from repro.checks.noqa import NoqaDirectives, parse_noqa
from repro.checks.rules import ALL_RULES, ModuleContext, ProjectContext, Rule
from repro.checks.sarif import format_sarif, sarif_report

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckConfig",
    "CheckResult",
    "FIXABLE_RULES",
    "Finding",
    "ModuleContext",
    "NoqaDirectives",
    "ProjectContext",
    "Rule",
    "SEVERITIES",
    "discover_files",
    "fix_source",
    "format_json",
    "format_sarif",
    "format_text",
    "load_baseline",
    "migrate_baseline",
    "module_name_for",
    "parse_noqa",
    "rule_family",
    "run_checks",
    "sarif_report",
    "write_baseline",
]
