"""Mutable default arguments (``DEF001``).

A ``def f(x, cache={})`` default is created once at function definition and
shared across every call — state leaks between experiment runs, which is
exactly the kind of cross-run coupling a reproduction cannot afford.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["MutableDefaultArgumentRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultArgumentRule(Rule):
    id = "DEF001"
    name = "mutable-default-argument"
    description = "default argument values must be immutable"
    default_options = {"paths": []}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); use None "
                        "and create the value inside the function",
                        symbol=symbol or node.name,
                    )
