"""Registry/export consistency (``REG001``).

The CLI, harness and benchmarks resolve samplers, interpolators and
datasets by registry name, while users import the same classes from the
package ``__init__``.  The two surfaces drift silently: a class registered
twice shadows its first entry, and a registered class missing from
``__all__`` is invisible to ``from repro.interpolation import *`` and the
API docs.  This rule cross-checks every ``registry.py`` module against its
package ``__init__``:

* no name registered twice (duplicate dict keys or duplicate
  ``register_*`` calls — at runtime the registries also refuse this, see
  :func:`repro.interpolation.registry.register_interpolator`);
* no factory class registered under two names (aliases must be explicit
  lambdas/partials, making the aliasing visible);
* every registered factory class is exported by the package ``__all__``;
* package ``__all__`` lists are duplicate-free and every entry is bound
  in the module.  A module-level ``__getattr__`` (PEP 562 lazy exports,
  e.g. ``repro.perf`` re-exporting the campaign layer without importing
  it eagerly) makes the bound set unknowable, so the binding check is
  skipped for such modules — like a star-import.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule

__all__ = ["RegistryConsistencyRule"]


def _all_entries(tree: ast.Module) -> tuple[list[tuple[str, ast.AST]], bool]:
    """``(entries, found)`` for a module-level ``__all__`` list/tuple."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "__all__"
            and isinstance(stmt.value, (ast.List, ast.Tuple))
        ):
            out = []
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append((elt.value, elt))
            return out, True
    return [], False


def _bound_names(tree: ast.Module) -> set[str] | None:
    """Top-level bound names; None when a star-import makes them unknowable."""
    names: set[str] = set()

    def scan(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.partition(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        return False
                    names.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                names.add(elt.id)
            elif isinstance(stmt, (ast.If, ast.Try)):
                blocks = [stmt.body, stmt.orelse]
                if isinstance(stmt, ast.Try):
                    blocks.append(stmt.finalbody)
                    blocks.extend(h.body for h in stmt.handlers)
                for block in blocks:
                    if not scan(block):
                        return False
        return True

    if not scan(tree.body):
        return None
    return names


class RegistryConsistencyRule(Rule):
    id = "REG001"
    name = "registry-consistency"
    description = "registries and package __all__ exports must agree"
    default_options = {
        "paths": [],
        # Module filenames treated as registries, checked against the
        # package __init__ in the same directory.
        "registry_files": ["registry.py"],
    }

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        for ctx in project.modules:
            if not ctx.in_scope(self.options["paths"]):
                continue
            if ctx.path.name in self.options["registry_files"]:
                yield from self._check_registry(ctx, project)
            if ctx.path.name == "__init__.py":
                yield from self._check_all(ctx)

    # ---------------------------------------------------------- registries
    def _check_registry(
        self, ctx: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        keys: list[tuple[str, ast.AST]] = []
        factories: list[tuple[str, ast.AST]] = []

        for stmt in ctx.tree.body:
            # ALL-CAPS module-level dict literal, e.g. INTERPOLATORS = {...}
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id.isupper()
                and isinstance(stmt.value, ast.Dict)
            ):
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.append((key.value, key))
                    elif isinstance(key, ast.Attribute) and isinstance(
                        key.value, ast.Name
                    ):
                        keys.append((f"{key.value.id}.{key.attr}", key))
                    if isinstance(value, ast.Name):
                        factories.append((value.id, value))
            # register_*("name", Factory) / register_*(Factory) calls
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                func = call.func
                fname = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else ""
                )
                if not fname.startswith("register"):
                    continue
                for arg in call.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        keys.append((arg.value, arg))
                    elif isinstance(arg, ast.Name):
                        factories.append((arg.id, arg))

        yield from self._duplicates(ctx, keys, "name {0!r} is registered twice")
        yield from self._duplicates(
            ctx,
            factories,
            "factory {0!r} is registered more than once; alias it with an "
            "explicit lambda if both entries are intended",
        )

        init = project.find_sibling(ctx, "__init__.py")
        if init is None:
            return
        exported, found = _all_entries(init.tree)
        if not found:
            return
        export_names = {name for name, _ in exported}
        for name, node in factories:
            if name not in export_names:
                yield self.finding(
                    ctx,
                    node,
                    f"registered factory {name!r} is missing from "
                    f"{init.display_path} __all__",
                )

    def _duplicates(
        self, ctx: ModuleContext, entries: list[tuple[str, ast.AST]], template: str
    ) -> Iterable[Finding]:
        seen: set[str] = set()
        for name, node in entries:
            if name in seen:
                yield self.finding(ctx, node, template.format(name))
            seen.add(name)

    # ------------------------------------------------------------- __all__
    def _check_all(self, ctx: ModuleContext) -> Iterable[Finding]:
        exported, found = _all_entries(ctx.tree)
        if not found:
            return
        seen: set[str] = set()
        for name, node in exported:
            if name in seen:
                yield self.finding(ctx, node, f"__all__ lists {name!r} twice")
            seen.add(name)
        bound = _bound_names(ctx.tree)
        if bound is None or "__getattr__" in bound:
            # PEP 562: a module __getattr__ can bind any name on demand.
            return
        for name, node in exported:
            # A package __init__ may list sibling submodules without
            # importing them (importable via `from pkg import sub`).
            if (ctx.path.parent / f"{name}.py").exists() or (
                ctx.path.parent / name / "__init__.py"
            ).exists():
                continue
            if name not in bound:
                yield self.finding(
                    ctx, node, f"__all__ exports {name!r} but the module never binds it"
                )
