"""Rule framework: module/project contexts and the Rule base class.

A rule sees one parsed module at a time through :meth:`Rule.check_module`
and may emit more findings in :meth:`Rule.finalize` once every module has
been visited (for cross-file invariants such as import cycles and registry
consistency).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.checks.findings import Finding

__all__ = ["ModuleContext", "ProjectContext", "Rule", "walk_with_symbols"]


@dataclass
class ModuleContext:
    """One parsed source module."""

    path: Path                 # absolute path on disk
    display_path: str          # posix path used in findings (as scanned)
    module: str | None         # dotted module name, when derivable
    source: str
    tree: ast.Module

    @classmethod
    def from_source(
        cls,
        source: str,
        path: Path,
        display_path: str | None = None,
        module: str | None = None,
    ) -> "ModuleContext":
        return cls(
            path=path,
            display_path=display_path or path.as_posix(),
            module=module,
            source=source,
            tree=ast.parse(source),
        )

    def in_scope(self, fragments: Iterable[str]) -> bool:
        """True when this module falls under any configured path fragment.

        An empty fragment list means "everywhere".  Fragments match against
        the posix form of the absolute path, so ``"/metrics/"`` selects the
        metrics package wherever the tree is rooted.
        """
        frags = list(fragments)
        if not frags:
            return True
        posix = self.path.as_posix()
        return any(frag in posix for frag in frags)


@dataclass
class ProjectContext:
    """All modules of one checker run."""

    modules: list[ModuleContext] = field(default_factory=list)

    def by_module(self) -> dict[str, ModuleContext]:
        return {m.module: m for m in self.modules if m.module}

    def model(self):
        """The shared semantic model (symbol table + call graph + summaries).

        Built lazily on first use and cached, so every rule's ``finalize``
        pass shares one :class:`repro.checks.analysis.ProjectModel`.
        """
        from repro.checks.analysis import build_model

        return build_model(self)

    def find_sibling(self, ctx: ModuleContext, filename: str) -> "ModuleContext | None":
        """The scanned module living next to ``ctx`` with ``filename``."""
        target = ctx.path.parent / filename
        for m in self.modules:
            if m.path == target:
                return m
        return None


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set ``id``, ``name``, ``description``, a ``severity`` tier
    (``error`` | ``warning`` | ``note``; the default is ``warning``) and
    optionally ``default_options``; overrides passed at construction are
    merged over the defaults.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = "warning"
    default_options: dict = {}

    def __init__(self, options: dict | None = None) -> None:
        self.options = {**self.default_options, **(options or {})}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Per-module pass; yield findings."""
        return ()

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        """Cross-module pass, after every module was visited."""
        return ()

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            symbol=symbol,
            severity=self.severity,
        )


def walk_with_symbols(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, enclosing_symbol)`` for every node in the module.

    The symbol is the dotted def/class chain (``"Dense.__init__"``), empty
    at module level — used to label findings with their context.
    """

    def visit(node: ast.AST, symbol: str) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                inner = f"{symbol}.{child.name}" if symbol else child.name
                yield child, symbol
                yield from visit(child, inner)
            else:
                yield child, symbol
                yield from visit(child, symbol)

    yield tree, ""
    yield from visit(tree, "")
