"""Aliasing discipline for the fused ``out=`` kernels (``ALS0xx``).

The ``repro.nn`` fast path and the :class:`repro.perf.Workspace` arenas
get their speed from writing into caller-provided buffers.  That trade
has two failure modes the bit-identity tests cannot always catch:

* ``ALS001`` — an ``out=`` buffer aliasing a *read* operand of an
  alias-unsafe operation (``np.matmul``, ``np.dot``, ``np.einsum``,
  ``np.tensordot``: contraction kernels read their inputs while writing
  the output, so overlap silently corrupts the result).  The rule checks
  both **direct** call sites (``np.matmul(x, w, out=x)``) and
  **interprocedural** flows: a project function that routes parameter
  ``a`` into such an op's input and parameter ``b`` into its ``out=`` is
  summarized, and every resolved call site passing the same expression
  for both parameters is flagged.
* ``ALS002`` — a :meth:`Workspace.buffer` arena buffer persisted on
  ``self``: arena buffers are valid only until the same ``(tag, shape,
  dtype)`` key is requested again, so storing one on the instance lets a
  later step read clobbered memory.  Scoped to the fast-path packages;
  by-construction-safe stores (consumed before the key is reused) are
  suppressed with ``# repro: noqa[ALS002]`` plus the invariant.

Elementwise ufuncs (``np.multiply(x, m, out=x)``) are deliberately *not*
flagged — in-place elementwise rewriting is the fast path's bread and
butter and is well-defined.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.analysis import ALIAS_UNSAFE_OPS, dotted, root_name
from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule, walk_with_symbols

__all__ = ["OutAliasesInputRule", "ArenaEscapeRule"]


def _ast_equal(a: ast.AST, b: ast.AST) -> bool:
    return ast.dump(a) == ast.dump(b)


class OutAliasesInputRule(Rule):
    id = "ALS001"
    name = "out-aliases-input"
    description = "out= buffers aliasing a read operand of matmul-like ops"
    severity = "error"
    default_options = {"paths": []}

    # ------------------------------------------------------------- per-module
    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func) or ""
            op = name.rsplit(".", 1)[-1]
            if op not in ALIAS_UNSAFE_OPS:
                continue
            out = next((kw.value for kw in node.keywords if kw.arg == "out"), None)
            if out is None:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Constant):
                    continue
                if _ast_equal(arg, out):
                    yield self.finding(
                        ctx,
                        node,
                        f"out= aliases input operand '{ast.unparse(arg)}' of "
                        f"np.{op}; contraction kernels need disjoint buffers "
                        "— write to a scratch buffer and copy",
                        symbol=symbol,
                    )
                    break

    # --------------------------------------------------------- cross-module
    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.model()
        # Functions whose (in_param, out_param) pairs must stay disjoint.
        flows: dict[str, list] = {}
        for qualname in model.functions:
            summary = model.summary(qualname)
            if summary.out_flows:
                flows[qualname] = summary.out_flows
        if not flows:
            return
        for qualname, info in sorted(model.functions.items()):
            if not info.ctx.in_scope(self.options["paths"]):
                continue
            summary = model.summary(qualname)
            for call, expr in summary.calls:
                callee = model.resolve(expr, info)
                if callee is None or callee not in flows or callee == qualname:
                    continue
                callee_info = model.functions[callee]
                binding = self._bind(call, callee_info.node)
                if binding is None:
                    continue
                for flow in flows[callee]:
                    arg_in = binding.get(flow.in_param)
                    arg_out = binding.get(flow.out_param)
                    if (
                        arg_in is not None
                        and arg_out is not None
                        and not isinstance(arg_in, ast.Constant)
                        and _ast_equal(arg_in, arg_out)
                    ):
                        short = callee.rsplit(".", 1)[-1]
                        yield self.finding(
                            info.ctx,
                            call,
                            f"'{ast.unparse(arg_out)}' is passed as both "
                            f"'{flow.in_param}' and '{flow.out_param}' of "
                            f"'{short}', which feeds np.{flow.op} with an "
                            "aliased out= buffer "
                            f"({callee_info.ctx.display_path}:"
                            f"{flow.node.lineno}); pass disjoint buffers",
                            symbol=qualname.rsplit(".", 1)[-1],
                        )

    def _bind(
        self, call: ast.Call, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, ast.AST] | None:
        """Map callee parameter names to this call's argument expressions."""
        params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        binding: dict[str, ast.AST] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                return None  # cannot bind positionally past *args
            if i < len(params):
                binding[params[i]] = arg
        kwonly = {a.arg for a in fn.args.kwonlyargs}
        for kw in call.keywords:
            if kw.arg is None:
                return None  # **kwargs call site: bindings unknowable
            if kw.arg in params or kw.arg in kwonly:
                binding[kw.arg] = kw.value
        return binding


class ArenaEscapeRule(Rule):
    id = "ALS002"
    name = "arena-escape"
    description = "Workspace arena buffers persisted on self"
    severity = "warning"
    default_options = {"paths": ["/nn/", "/perf/"], "exclude": ["/perf/workspace.py"]}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        posix = ctx.path.as_posix()
        if any(fragment in posix for fragment in self.options["exclude"]):
            return
        for fn, symbol in walk_with_symbols(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            buffer_vars = self._buffer_vars(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                stored = self._stored_buffer(node, buffer_vars)
                if stored is None:
                    continue
                target_text = ast.unparse(node.targets[0])
                yield self.finding(
                    ctx,
                    node,
                    f"workspace arena buffer '{stored}' is persisted on "
                    f"'{target_text}': arena buffers are only valid until "
                    "their (tag, shape, dtype) key is requested again — copy "
                    "it, or suppress with the invariant that it is consumed "
                    "before the key is reused",
                    symbol=f"{symbol}.{fn.name}" if symbol else fn.name,
                )

    def _buffer_vars(self, fn: ast.AST) -> set[str]:
        """Names bound (anywhere in ``fn``) from a ``*.buffer(...)`` call."""
        out: set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "buffer"
            ):
                out.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        return out

    def _stored_buffer(self, node: ast.Assign, buffer_vars: set[str]) -> str | None:
        """The buffer name when this assignment persists one on ``self``."""
        persists = any(
            isinstance(t, (ast.Attribute, ast.Subscript))
            and root_name(t) == "self"
            for t in node.targets
        )
        if not persists:
            return None
        value = node.value
        if isinstance(value, ast.Name) and value.id in buffer_vars:
            return value.id
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "buffer"
        ):
            return ast.unparse(value)[:40]
        return None