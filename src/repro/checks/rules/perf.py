"""Performance discipline for the workspace fast path.

``PRF001`` — files that declare themselves hot paths (first line is the
``# hot-path`` marker) route steady-state buffers through a
:class:`repro.perf.Workspace`; a fresh ``np.zeros``/``np.empty``-family
allocation inside a loop body of such a file reintroduces the per-batch
allocations the fast path exists to remove.  Intentional loop allocations
(startup warming, once-per-call results) are suppressed explicitly with
``# repro: noqa[PRF001]``.

One idiom is recognized as arena-backed rather than flagged: a loop
allocation assigned to a name that the module elsewhere passes as an
``out=`` target (``buf = np.empty(...)`` … ``np.matmul(a, b, out=buf)``).
That is the batched engine's fallback-buffer pattern — the allocation
*is* the reuse site's arena, sized once per call, so it needs no noqa.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule

__all__ = ["HotLoopAllocationRule"]

#: np.* constructors that allocate a fresh array every call
_ALLOCATORS = frozenset(
    {"zeros", "empty", "ones", "full", "zeros_like", "empty_like", "ones_like", "full_like"}
)


def _allocator_name(node: ast.Call) -> str | None:
    """The ``X`` of ``np.X(...)`` / ``numpy.X(...)`` when ``X`` allocates."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in _ALLOCATORS
    ):
        return func.attr
    return None


def _final_name(node: ast.expr) -> str | None:
    """The last name component of a target/argument expression.

    ``buf`` -> ``buf``; ``self.scratch[tag]`` -> ``scratch``;
    ``state.bufs["x"]`` -> ``bufs``.  Subscripts are stripped so a dict of
    arena buffers matches its fill site.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _out_target_names(tree: ast.AST) -> set[str]:
    """Final name components of every ``out=`` keyword argument in the module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out":
                    name = _final_name(kw.value)
                    if name is not None:
                        names.add(name)
    return names


class HotLoopAllocationRule(Rule):
    id = "PRF001"
    name = "hot-loop-allocation"
    description = "array allocation inside a loop of a # hot-path module"
    default_options = {"marker": "# hot-path"}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        first_line = ctx.source.split("\n", 1)[0].strip()
        if first_line != self.options["marker"]:
            return
        # Only statement loops count: comprehensions run once per call, the
        # steady-state concern is the per-iteration body of for/while.
        out_names = _out_target_names(ctx.tree)
        # Allocations assigned to a later-``out=`` target are arena fills,
        # not steady-state churn (see the module docstring).
        arena_fills: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and any(_final_name(t) in out_names for t in node.targets)
            ):
                arena_fills.add(id(node.value))
        seen: set[int] = set()  # nested loops walk shared bodies once
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for stmt in loop.body + loop.orelse:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) and id(node) not in seen:
                        seen.add(id(node))
                        if id(node) in arena_fills:
                            continue
                        name = _allocator_name(node)
                        if name is not None:
                            yield self.finding(
                                ctx,
                                node,
                                f"np.{name} inside a loop of a hot-path module; "
                                "reuse a repro.perf.Workspace buffer "
                                "(# repro: noqa[PRF001] if intentional)",
                            )
