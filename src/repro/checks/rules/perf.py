"""Performance discipline for the workspace fast path.

``PRF001`` — files that declare themselves hot paths (first line is the
``# hot-path`` marker) route steady-state buffers through a
:class:`repro.perf.Workspace`; a fresh ``np.zeros``/``np.empty``-family
allocation inside a loop body of such a file reintroduces the per-batch
allocations the fast path exists to remove.  Intentional loop allocations
(startup warming, once-per-call results) are suppressed explicitly with
``# repro: noqa[PRF001]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule

__all__ = ["HotLoopAllocationRule"]

#: np.* constructors that allocate a fresh array every call
_ALLOCATORS = frozenset(
    {"zeros", "empty", "ones", "full", "zeros_like", "empty_like", "ones_like", "full_like"}
)


def _allocator_name(node: ast.Call) -> str | None:
    """The ``X`` of ``np.X(...)`` / ``numpy.X(...)`` when ``X`` allocates."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in _ALLOCATORS
    ):
        return func.attr
    return None


class HotLoopAllocationRule(Rule):
    id = "PRF001"
    name = "hot-loop-allocation"
    description = "array allocation inside a loop of a # hot-path module"
    default_options = {"marker": "# hot-path"}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        first_line = ctx.source.split("\n", 1)[0].strip()
        if first_line != self.options["marker"]:
            return
        # Only statement loops count: comprehensions run once per call, the
        # steady-state concern is the per-iteration body of for/while.
        seen: set[int] = set()  # nested loops walk shared bodies once
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for stmt in loop.body + loop.orelse:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) and id(node) not in seen:
                        seen.add(id(node))
                        name = _allocator_name(node)
                        if name is not None:
                            yield self.finding(
                                ctx,
                                node,
                                f"np.{name} inside a loop of a hot-path module; "
                                "reuse a repro.perf.Workspace buffer "
                                "(# repro: noqa[PRF001] if intentional)",
                            )
