"""Import-cycle detection across the scanned package (``IMP001``).

Cycles between ``repro.*`` modules make import order load-bearing: whether
a module sees a finished or half-initialized sibling depends on which entry
point ran first.  Only module-level imports participate — imports deferred
into functions (the registry/CLI pattern) are the sanctioned way to break a
genuine mutual dependency, and ``if TYPE_CHECKING:`` blocks never execute.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule

__all__ = ["ImportCycleRule"]


def _top_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-level import statements, descending into try/except but not
    into functions, classes, or ``if TYPE_CHECKING`` blocks."""

    def scan(body: list[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from scan(block)
                for handler in stmt.handlers:
                    yield from scan(handler.body)
            elif isinstance(stmt, ast.If) and not _is_type_checking(stmt.test):
                yield from scan(stmt.body)
                yield from scan(stmt.orelse)

    yield from scan(tree.body)


def _is_type_checking(test: ast.AST) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
        return True
    return False


class ImportCycleRule(Rule):
    id = "IMP001"
    name = "import-cycle"
    description = "module-level import cycles across the scanned package"
    default_options = {"paths": []}

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        modules = project.by_module()
        edges: dict[str, dict[str, ast.stmt]] = {}
        for name, ctx in modules.items():
            if not ctx.in_scope(self.options["paths"]):
                continue
            edges[name] = {}
            for stmt in _top_level_imports(ctx.tree):
                for target in self._targets(stmt, ctx, modules):
                    if target != name:
                        edges[name].setdefault(target, stmt)

        for cycle in self._cycles(edges):
            anchor_name = min(cycle)
            ctx = modules[anchor_name]
            nxt = next(m for m in cycle if m in edges[anchor_name])
            stmt = edges[anchor_name][nxt]
            chain = " -> ".join(sorted(cycle) + [anchor_name])
            yield self.finding(
                ctx,
                stmt,
                f"import cycle: {chain}; defer one import into the function "
                "that needs it",
            )

    # ------------------------------------------------------------ resolve
    def _targets(
        self,
        stmt: ast.stmt,
        ctx: ModuleContext,
        modules: dict[str, ModuleContext],
    ) -> Iterator[str]:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.name
                while name:
                    if name in modules:
                        yield name
                        break
                    name = name.rpartition(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            base = self._resolve_from(stmt, ctx)
            if base is None:
                return
            for alias in stmt.names:
                full = f"{base}.{alias.name}" if base else alias.name
                if full in modules:
                    yield full
                elif base in modules:
                    yield base

    def _resolve_from(self, stmt: ast.ImportFrom, ctx: ModuleContext) -> str | None:
        if stmt.level == 0:
            return stmt.module
        if ctx.module is None:
            return None
        # The package a relative import is resolved against.
        parts = ctx.module.split(".")
        if ctx.path.name != "__init__.py":
            parts = parts[:-1]
        drop = stmt.level - 1
        if drop > len(parts):
            return None
        parts = parts[: len(parts) - drop] if drop else parts
        base = ".".join(parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    # -------------------------------------------------------------- scc
    def _cycles(self, edges: dict[str, dict[str, ast.stmt]]) -> list[list[str]]:
        """Strongly connected components of size > 1 (Tarjan, iterative)."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(edges.get(root, {})))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in edges:
                        continue
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(edges.get(succ, {}))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        sccs.append(scc)

        for name in sorted(edges):
            if name not in index:
                strongconnect(name)
        return sccs
