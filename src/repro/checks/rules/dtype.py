"""Dtype discipline: float64 end to end through the numerics.

The paper's SNR comparisons are run in float64; a silent float32 downcast
anywhere between sampling and metric computation shifts SNR by several dB
without failing a single test.  Two rules police the boundary:

* ``DT001`` — inside :mod:`repro.nn`, every ``np.asarray``/``np.array``
  conversion must name its dtype explicitly (the convention is
  ``np.asarray(x, dtype=np.float64)``).  An implicit conversion inherits
  whatever dtype the caller happened to pass in.
* ``DT002`` — float32 introduction in hot numeric paths:
  ``astype(np.float32)``, ``astype("float32")``, ``dtype=np.float32`` or
  ``np.float32(...)``.  Storage/serialization code may downcast
  deliberately — suppress with ``# repro: noqa[DT002]`` there.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["ExplicitDtypeBoundaryRule", "Float32DowncastRule"]


def _is_np_func(node: ast.AST, names: frozenset[str]) -> str | None:
    """The ``X`` of ``np.X`` / ``numpy.X`` when ``X in names``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
        and node.attr in names
    ):
        return node.attr
    return None


def _mentions_float32(node: ast.AST) -> bool:
    """True when the expression names float32 in any spelling."""
    if isinstance(node, ast.Constant) and node.value == "float32":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "float32":
        return True
    if isinstance(node, ast.Name) and node.id == "float32":
        return True
    return False


class ExplicitDtypeBoundaryRule(Rule):
    id = "DT001"
    name = "explicit-dtype-boundary"
    description = "array conversions entering repro.nn must pass an explicit dtype"
    default_options = {"paths": ["/nn/"]}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = _is_np_func(node.func, frozenset({"asarray", "array"}))
            if func is None:
                continue
            has_dtype = len(node.args) >= 2 or any(
                kw.arg == "dtype" for kw in node.keywords
            )
            if not has_dtype:
                yield self.finding(
                    ctx,
                    node,
                    f"np.{func} without an explicit dtype at the repro.nn "
                    "boundary; use np.asarray(x, dtype=np.float64)",
                    symbol=symbol,
                )


class Float32DowncastRule(Rule):
    id = "DT002"
    name = "no-float32-downcast"
    description = "float32 downcasts in hot numeric paths corrupt metric precision"
    default_options = {
        "paths": [
            "/nn/",
            "/metrics/",
            "/core/",
            "/interpolation/",
            "/sampling/",
            "/grid/",
            "/analysis/",
        ]
    }

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # x.astype(np.float32) / x.astype("float32")
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _mentions_float32(node.args[0])
            ):
                yield self.finding(
                    ctx, node, "float32 downcast via astype in a hot path",
                    symbol=symbol,
                )
                continue
            # np.float32(x)
            if _is_np_func(node.func, frozenset({"float32"})):
                yield self.finding(
                    ctx, node, "np.float32() cast in a hot path", symbol=symbol
                )
                continue
            # any call carrying dtype=np.float32 / dtype="float32"
            for kw in node.keywords:
                if kw.arg == "dtype" and _mentions_float32(kw.value):
                    yield self.finding(
                        ctx, node, "dtype=float32 in a hot path", symbol=symbol
                    )
                    break
