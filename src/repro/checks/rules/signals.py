"""Signal-handler hygiene: registrations must be restorable.

A library (or campaign stage) that calls ``signal.signal(...)`` and
discards the return value has destroyed the previous handler: when its
scope ends, SIGTERM/SIGINT behavior silently stays hijacked — nested
:class:`repro.resilience.GracefulInterrupt` contexts, pytest, and
embedding applications all lose their handlers.  The repo convention is
capture-and-restore (what ``GracefulInterrupt`` does)::

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        ...
    finally:
        signal.signal(signal.SIGTERM, previous)

* ``RES001`` — a ``signal.signal(...)`` call used as a bare expression
  statement, i.e. the previous handler is discarded and can never be
  restored.  ``--fix`` captures it into a variable; wiring the restore
  is left to the author (the fix makes the loss visible, not invisible).

The *restore* call is itself a bare statement whose return value nobody
needs — so a statement whose handler argument is recognizably a saved
handler (a name like ``previous``/``old_handler``/``saved``, or a
subscript such as ``handlers[sig]``) is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["UnrestoredSignalHandlerRule"]


def _signal_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound to the ``signal`` module and to ``signal.signal`` itself."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "signal":
                    modules.add(alias.asname or "signal")
        elif isinstance(node, ast.ImportFrom) and node.module == "signal":
            for alias in node.names:
                if alias.name == "signal":
                    functions.add(alias.asname or "signal")
    return modules, functions


def is_signal_signal_call(node: ast.AST, modules: set[str], functions: set[str]) -> bool:
    """True for ``signal.signal(...)`` (module alias) or a from-imported call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "signal"
        and isinstance(func.value, ast.Name)
        and func.value.id in modules
    ):
        return True
    return isinstance(func, ast.Name) and func.id in functions


_RESTORE_NAME_HINTS = ("prev", "old", "original", "saved", "restore")


def _is_restore_call(call: ast.Call) -> bool:
    """True when the handler argument is recognizably a saved handler.

    The canonical restore (``signal.signal(sig, previous)``) is itself a
    bare statement — flagging it would make the rule's own fix pattern
    fail the rule.  A handler argument that is a name carrying a
    saved-handler hint, or a subscript (``handlers[sig]``), marks the call
    as a restore.
    """
    handler = call.args[1] if len(call.args) >= 2 else None
    if handler is None:
        for kw in call.keywords:
            if kw.arg == "handler":
                handler = kw.value
    if isinstance(handler, ast.Subscript):
        return True
    if isinstance(handler, ast.Name):
        lowered = handler.id.lower()
        return any(hint in lowered for hint in _RESTORE_NAME_HINTS)
    return False


class UnrestoredSignalHandlerRule(Rule):
    id = "RES001"
    name = "signal-handler-not-restored"
    severity = "warning"
    description = (
        "signal.signal registrations must capture the previous handler "
        "(previous = signal.signal(...)) so it can be restored"
    )
    default_options = {"paths": []}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        modules, functions = _signal_aliases(ctx.tree)
        if not modules and not functions:
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if (
                isinstance(node, ast.Expr)
                and is_signal_signal_call(node.value, modules, functions)
                and not _is_restore_call(node.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "signal.signal(...) discards the previous handler — "
                    "capture it (previous = signal.signal(...)) and restore "
                    "it when the scope ends (see "
                    "repro.resilience.GracefulInterrupt)",
                    symbol=symbol,
                )
