"""Concurrency discipline (``THR0xx``), built on the project model.

The campaign scheduler, the shared-memory transport and the parallel
executor carry invariants a per-module lint cannot see: which functions
actually run on spawned threads, whether shared state they write is lock
protected, and whether every shared-memory segment is provably released.
These rules consume :class:`repro.checks.analysis.ProjectModel` —
the cross-file symbol table and call graph — to check them statically:

* ``THR001`` — state shared with the spawning scope (closure variables,
  ``global``s, ``self`` attributes) is written from a thread-target
  function — or anything it calls, bounded-depth — without a lexically
  enclosing ``with <lock>:``.  Thread-safe primitives (queues, events,
  semaphores) are exempt.
* ``THR002`` — a ``SharedMemory(create=True)`` /
  ``SharedArrayBundle.create`` result whose ``close()``/``unlink()``
  cannot be proven on all paths: not a ``with`` statement, no
  ``try/finally`` cleanup, and the segment never escapes the function
  (escaping transfers ownership to the caller or container).
* ``THR003`` — a bare ``x.acquire()`` (outside a ``with``) whose matching
  ``x.release()`` is absent or not inside a ``finally`` block, in the same
  function.  Functions named like acquire-wrappers transfer ownership by
  contract and are exempt.
* ``THR004`` — a non-daemon ``threading.Thread`` that is started but never
  joined and never escapes the spawning function.  ``daemon=True`` is the
  explicit fire-and-forget opt-in.

All four phrase findings as "cannot be proven": suppress genuine
by-construction safety with ``# repro: noqa[THR00x]`` plus a comment
stating the invariant (see ``docs/CHECKS.md``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule

__all__ = [
    "UnsynchronizedSharedWriteRule",
    "ShmLifecycleRule",
    "UnbalancedLockRule",
    "UnjoinedThreadRule",
]


def _module_of(project: ProjectContext, module: str) -> ModuleContext:
    return project.by_module()[module]


class UnsynchronizedSharedWriteRule(Rule):
    id = "THR001"
    name = "unsynchronized-shared-write"
    description = "thread-target functions writing shared state without a lock"
    severity = "error"
    default_options = {"paths": [], "depth": 3}

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.model()
        reported: set[tuple[str, int]] = set()
        for qualname, info in sorted(model.functions.items()):
            if not info.ctx.in_scope(self.options["paths"]):
                continue
            summary = model.summary(qualname)
            for spawn in summary.thread_spawns:
                target = model.resolve(spawn.target, info)
                if target is None:
                    continue
                for reached in model.reachable_from(
                    target, depth=int(self.options["depth"])
                ):
                    rs = model.summary(reached)
                    rinfo = model.functions[reached]
                    ctor = reached.rsplit(".", 1)[-1] == "__init__"
                    for write in rs.captured_writes:
                        if write.locked:
                            continue
                        if ctor and write.name.startswith("self"):
                            # constructors initialize their own fresh
                            # instance; nothing else can see it yet
                            continue
                        key = (reached, write.node.lineno)
                        if key in reported:
                            continue
                        reported.add(key)
                        short = reached.rsplit(".", 1)[-1]
                        yield self.finding(
                            rinfo.ctx,
                            write.node,
                            f"'{write.detail}' writes shared state "
                            f"'{write.name}' from thread target '{short}' "
                            f"(spawned at {info.ctx.display_path}:"
                            f"{spawn.node.lineno}) without holding a lock; "
                            "guard the write or make the state thread-local",
                            symbol=short,
                        )


def _name_escapes(fn: ast.AST, name: str, exempt_methods: frozenset[str]) -> bool:
    """True when ``name`` is returned, stored, or passed onward in ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and _mentions(node.value, name):
            return True
        if isinstance(node, ast.Assign):
            if any(
                not isinstance(t, ast.Name) and _target_roots_differ(t, name)
                for t in node.targets
            ) and _mentions(node.value, name):
                return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == name
                and func.attr in exempt_methods
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _mentions(arg, name):
                    return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and _mentions(
            getattr(node, "value", None), name
        ):
            return True
    return False


def _mentions(node: ast.AST | None, name: str) -> bool:
    if node is None:
        return False
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _target_roots_differ(target: ast.AST, name: str) -> bool:
    """Assignment into a container/attribute other than ``name`` itself."""
    while isinstance(target, (ast.Attribute, ast.Subscript, ast.Starred)):
        target = target.value
    return not (isinstance(target, ast.Name) and target.id == name)


def _cleanup_in_finally(fn: ast.AST, name: str) -> bool:
    """``name.close()`` or ``name.unlink()`` inside any ``finally`` block."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for call in ast.walk(stmt):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("close", "unlink", "shutdown")
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == name
                ):
                    return True
    return False


class ShmLifecycleRule(Rule):
    id = "THR002"
    name = "shm-lifecycle"
    description = "SharedMemory segments whose close()/unlink() is not provable"
    severity = "error"
    default_options = {"paths": []}

    _ESCAPE_EXEMPT = frozenset({"close", "unlink", "buf"})

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.model()
        for qualname, info in sorted(model.functions.items()):
            if not info.ctx.in_scope(self.options["paths"]):
                continue
            summary = model.summary(qualname)
            for creation in summary.shm_creations:
                if creation.in_with or creation.escapes:
                    continue
                name = creation.assigned_to
                if name is None:
                    # created in expression position outside a with: leaks
                    # unless it is immediately returned (escape handled above)
                    yield self._leak(info, creation.node, qualname, "<unnamed>")
                    continue
                if _cleanup_in_finally(info.node, name):
                    continue
                if _name_escapes(info.node, name, self._ESCAPE_EXEMPT):
                    continue
                yield self._leak(info, creation.node, qualname, name)

    def _leak(self, info, node: ast.AST, qualname: str, name: str) -> Finding:
        short = qualname.rsplit(".", 1)[-1]
        return self.finding(
            info.ctx,
            node,
            f"shared-memory segment '{name}' created in '{short}' may leak: "
            "close()/unlink() not provable on all paths — use a with block "
            "or a try/finally, or hand ownership to a caller/container",
            symbol=short,
        )


class UnbalancedLockRule(Rule):
    id = "THR003"
    name = "unbalanced-acquire-release"
    description = "bare acquire() without a release() in a finally block"
    severity = "error"
    default_options = {"paths": []}

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.model()
        for qualname, info in sorted(model.functions.items()):
            if not info.ctx.in_scope(self.options["paths"]):
                continue
            short = qualname.rsplit(".", 1)[-1]
            if "acquire" in short or "lock" in short.lower():
                continue  # acquire-wrappers transfer ownership by contract
            if short in ("__enter__", "__exit__"):
                continue  # the with-protocol splits the pair by design
            summary = model.summary(qualname)
            acquires = [
                op for op in summary.lock_ops if op.op == "acquire" and not op.in_with
            ]
            if not acquires:
                continue
            released_in_finally = {
                op.receiver
                for op in summary.lock_ops
                if op.op == "release" and op.in_finally
            }
            for op in acquires:
                if op.receiver in released_in_finally:
                    continue
                has_release = any(
                    o.op == "release" and o.receiver == op.receiver
                    for o in summary.lock_ops
                )
                problem = (
                    "release() is not inside a finally block"
                    if has_release
                    else "no matching release() in this function"
                )
                yield self.finding(
                    info.ctx,
                    op.node,
                    f"'{op.receiver}.acquire()' in '{short}' is unbalanced: "
                    f"{problem}; prefer 'with {op.receiver}:' or release in "
                    "a finally",
                    symbol=short,
                )


class UnjoinedThreadRule(Rule):
    id = "THR004"
    name = "unjoined-thread"
    description = "non-daemon threads that are started but never joined"
    severity = "warning"
    default_options = {"paths": []}

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.model()
        for qualname, info in sorted(model.functions.items()):
            if not info.ctx.in_scope(self.options["paths"]):
                continue
            summary = model.summary(qualname)
            spawns = [s for s in summary.thread_spawns if s.kind == "thread"]
            if not spawns:
                continue
            assigned = self._spawn_assignments(info.node)
            short = qualname.rsplit(".", 1)[-1]
            for spawn in spawns:
                if spawn.daemon:
                    continue
                name = assigned.get(id(spawn.node))
                if name is None:
                    continue  # unassigned thread objects cannot be join-checked
                started = any(expr == f"{name}.start" for _n, expr in summary.calls)
                if not started or name in summary.joined:
                    continue
                if _name_escapes(info.node, name, frozenset({"start", "join"})):
                    continue
                yield self.finding(
                    info.ctx,
                    spawn.node,
                    f"thread '{name}' started in '{short}' is never joined "
                    "and never escapes; join it (or pass daemon=True for an "
                    "explicit fire-and-forget)",
                    symbol=short,
                )

    def _spawn_assignments(self, fn: ast.AST) -> dict[int, str]:
        """Map each Thread(...) ctor node id to the name it is assigned to."""
        out: dict[int, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[id(node.value)] = target.id
        return out