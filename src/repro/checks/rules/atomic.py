"""Checkpoint durability: no non-atomic numpy archive writes.

A crash between ``open()`` and the final flush of a checkpoint leaves a
truncated archive that a later run may load as garbage.  The repo's
convention (:func:`repro.resilience.atomic_write_npz`) is write-to-temp
then ``os.replace`` — the POSIX rename is atomic, so readers only ever see
the old or the complete new file.

* ``ATM001`` — ``np.save`` / ``np.savez`` / ``np.savez_compressed`` called
  in a scope with no ``.replace(...)`` rename in sight.  Either write to a
  temporary path and ``os.replace`` it into place within the same
  function, or call :func:`repro.resilience.atomic_write_npz`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["NonAtomicCheckpointWriteRule"]

_SAVE_ATTRS = frozenset({"save", "savez", "savez_compressed"})


def _np_save_attr(node: ast.AST) -> str | None:
    """The ``X`` of a ``np.X(...)``/``numpy.X(...)`` save call, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SAVE_ATTRS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in ("np", "numpy")
    ):
        return node.func.attr
    return None


def _is_replace_call(node: ast.AST) -> bool:
    """A ``.replace(...)`` call — ``os.replace`` or ``Path.replace``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "replace"
    )


def _scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``root``'s scope, not descending into nested functions."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _scope_nodes(child)


class NonAtomicCheckpointWriteRule(Rule):
    id = "ATM001"
    name = "non-atomic-checkpoint-write"
    description = (
        "numpy archive writes must be atomic: temp file + os.replace, "
        "or repro.resilience.atomic_write_npz"
    )
    default_options = {"paths": []}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        # Scopes are the module itself plus every (async) function def;
        # a save call is atomic only if its own scope performs the rename.
        scopes: list[tuple[ast.AST, str]] = [(ctx.tree, "")]
        for node, symbol in walk_with_symbols(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, f"{symbol}.{node.name}" if symbol else node.name))
        for root, symbol in scopes:
            nodes = list(_scope_nodes(root))
            if any(_is_replace_call(n) for n in nodes):
                continue
            for node in nodes:
                attr = _np_save_attr(node)
                if attr is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.{attr} writes the checkpoint in place; a crash "
                        "mid-write leaves a truncated archive — write to a "
                        "temp file and os.replace it, or use "
                        "repro.resilience.atomic_write_npz",
                        symbol=symbol,
                    )
