"""Guarded division in metric/analysis code (``DIV001``).

SNR, PSNR and SSIM are ratios; an unguarded denominator turns a constant
field or a perfect reconstruction into ``inf``/``nan`` that silently
poisons every aggregate downstream.  Divisions in the configured packages
must make their denominator's positivity visible *in the expression*:

* an additive stabilizer — ``x / (den + eps)``, the SSIM ``c1``/``c2``
  constants, or any positive literal term;
* a clamp — ``x / np.maximum(den, eps)``, ``np.clip``, ``max(den, eps)``;
* a (non-zero) constant denominator.

A control-flow guard (``if den == 0: return ...``) is invisible to the
expression and easy to divorce from the division in a refactor, so it does
not count; either restructure the math (e.g. ``log(a) - log(b)`` instead
of ``log(a / b)``) or suppress with ``# repro: noqa[DIV001]`` plus a
comment stating the invariant that makes the denominator non-zero.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["GuardedDivisionRule"]

_CLAMP_CALLS = frozenset({"maximum", "clip", "max", "fmax"})


class GuardedDivisionRule(Rule):
    id = "DIV001"
    name = "guarded-division"
    description = "divisions in metrics/analysis must carry a visible epsilon guard"
    default_options = {
        "paths": ["/metrics/", "/analysis/"],
        # Names that read as deliberate stabilizers when they appear as an
        # additive term of a denominator.
        "guard_name_pattern": r"(?i)(eps|epsilon|tiny|delta|stab|smooth|^c[0-9]$)",
    }

    def __init__(self, options: dict | None = None) -> None:
        super().__init__(options)
        self._guard_re = re.compile(self.options["guard_name_pattern"])

    # ------------------------------------------------------------ helpers
    def _is_guard_name(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._guard_re.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(self._guard_re.search(node.attr))
        return False

    def _is_constant(self, node: ast.AST) -> bool:
        """A compile-time numeric expression (e.g. ``2``, ``w := no``, ``3.0 * 2``)."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value != 0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._is_constant(node.operand)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
        ):
            return self._is_constant(node.left) and self._is_constant(node.right)
        return False

    def _is_positive_constant(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value > 0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
            return self._is_positive_constant(node.operand)
        return False

    def _add_terms(self, node: ast.AST) -> list[ast.AST]:
        """Flatten a chain of ``+`` into its terms."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._add_terms(node.left) + self._add_terms(node.right)
        return [node]

    def _is_safe(self, node: ast.AST) -> bool:
        # Strip a float()/int() wrapper: safety is the inner expression's.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("float", "int")
            and len(node.args) == 1
        ):
            return self._is_safe(node.args[0])
        if self._is_constant(node):
            return True
        if self._is_guard_name(node):
            return True
        # max(den, eps) / np.maximum(den, eps) / np.clip(den, eps, ...)
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _CLAMP_CALLS:
                return True
            return False
        # den + eps  (any additive term that is a guard name or positive literal)
        terms = self._add_terms(node)
        if len(terms) > 1 and any(
            self._is_guard_name(t) or self._is_positive_constant(t) for t in terms
        ):
            return True
        # product is non-zero when every factor is guarded: (a + c1) * (b + c2)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return self._is_safe(node.left) and self._is_safe(node.right)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            return self._is_safe(node.left)
        return False

    # --------------------------------------------------------------- rule
    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            denom: ast.AST | None = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                denom = node.right
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                denom = node.value
            if denom is None or self._is_safe(denom):
                continue
            yield self.finding(
                ctx,
                node,
                "division without a visible guard on the denominator; add an "
                "epsilon term / clamp, restructure the math, or suppress with "
                "a comment stating why the denominator cannot be zero",
                symbol=symbol,
            )
