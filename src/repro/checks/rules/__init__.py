"""The rule battery: every invariant the checker enforces.

Adding a rule: subclass :class:`~repro.checks.rules.base.Rule` in a module
here, give it a unique ``id``, and append the class to ``ALL_RULES``.
Trigger/clean/suppression fixtures in ``tests/test_checks_rules.py`` are
required for every rule (the test suite asserts the battery is covered).

Rules needing cross-file facts (the ``THR``/``ALS`` families) consume the
shared semantic model via ``project.model()`` in their ``finalize`` pass —
see :mod:`repro.checks.analysis`.
"""

from repro.checks.rules.aliasing import ArenaEscapeRule, OutAliasesInputRule
from repro.checks.rules.atomic import NonAtomicCheckpointWriteRule
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule
from repro.checks.rules.concurrency import (
    ShmLifecycleRule,
    UnbalancedLockRule,
    UnjoinedThreadRule,
    UnsynchronizedSharedWriteRule,
)
from repro.checks.rules.defaults import MutableDefaultArgumentRule
from repro.checks.rules.division import GuardedDivisionRule
from repro.checks.rules.dtype import ExplicitDtypeBoundaryRule, Float32DowncastRule
from repro.checks.rules.imports import ImportCycleRule
from repro.checks.rules.perf import HotLoopAllocationRule
from repro.checks.rules.registry_consistency import RegistryConsistencyRule
from repro.checks.rules.rng import LegacyGlobalRNGRule, UnseededGeneratorRule
from repro.checks.rules.signals import UnrestoredSignalHandlerRule

__all__ = [
    "Rule",
    "ModuleContext",
    "ProjectContext",
    "ALL_RULES",
    "LegacyGlobalRNGRule",
    "UnseededGeneratorRule",
    "ExplicitDtypeBoundaryRule",
    "Float32DowncastRule",
    "GuardedDivisionRule",
    "RegistryConsistencyRule",
    "ImportCycleRule",
    "MutableDefaultArgumentRule",
    "NonAtomicCheckpointWriteRule",
    "HotLoopAllocationRule",
    "UnsynchronizedSharedWriteRule",
    "ShmLifecycleRule",
    "UnbalancedLockRule",
    "UnjoinedThreadRule",
    "OutAliasesInputRule",
    "ArenaEscapeRule",
    "UnrestoredSignalHandlerRule",
]

ALL_RULES: tuple[type[Rule], ...] = (
    LegacyGlobalRNGRule,
    UnseededGeneratorRule,
    ExplicitDtypeBoundaryRule,
    Float32DowncastRule,
    GuardedDivisionRule,
    RegistryConsistencyRule,
    ImportCycleRule,
    MutableDefaultArgumentRule,
    NonAtomicCheckpointWriteRule,
    HotLoopAllocationRule,
    UnsynchronizedSharedWriteRule,
    ShmLifecycleRule,
    UnbalancedLockRule,
    UnjoinedThreadRule,
    OutAliasesInputRule,
    ArenaEscapeRule,
    UnrestoredSignalHandlerRule,
)
