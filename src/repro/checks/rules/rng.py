"""RNG discipline: reproducible randomness only.

Every benchmark figure in this repro depends on deterministic sampling and
weight initialization, so library code must draw randomness from an
``np.random.Generator`` that the caller seeds and threads through (the
convention of :mod:`repro.sampling` and :mod:`repro.nn.initializers`).

* ``RNG001`` — legacy global-state numpy RNG API (``np.random.seed``,
  ``np.random.rand``, ``np.random.RandomState()``, ...).  These mutate or
  read hidden process-wide state, so any import-order change silently
  reshuffles results.
* ``RNG002`` — ``np.random.default_rng()`` called without a seed
  argument: a fresh OS-entropy generator, i.e. guaranteed
  non-reproducibility.  Accept a ``Generator`` parameter or seed
  explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.rules.base import ModuleContext, Rule, walk_with_symbols

__all__ = ["LegacyGlobalRNGRule", "UnseededGeneratorRule"]

# Attributes of np.random that read or mutate the hidden global RandomState,
# plus the RandomState constructor itself.
_LEGACY_ATTRS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "beta",
        "binomial",
        "gamma",
        "get_state",
        "set_state",
        "RandomState",
    }
)


def _np_random_attr(node: ast.AST) -> str | None:
    """The ``X`` of ``np.random.X`` / ``numpy.random.X``, else None."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


class LegacyGlobalRNGRule(Rule):
    id = "RNG001"
    name = "legacy-global-rng"
    description = (
        "np.random global-state API is forbidden; thread an np.random.Generator"
    )
    default_options = {"paths": []}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            attr = _np_random_attr(node)
            if attr in _LEGACY_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{attr} uses numpy's hidden global RNG state; "
                    "accept and use an np.random.Generator instead",
                    symbol=symbol,
                )


class UnseededGeneratorRule(Rule):
    id = "RNG002"
    name = "unseeded-default-rng"
    description = "np.random.default_rng() without a seed is non-reproducible"
    default_options = {"paths": []}

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_scope(self.options["paths"]):
            return
        for node, symbol in walk_with_symbols(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _np_random_attr(node.func) == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "pass a seed or accept a Generator from the caller",
                    symbol=symbol,
                )
