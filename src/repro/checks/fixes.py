"""Autofixes for mechanical rules (``repro check --fix``).

Only rules whose fix is *provably behavior-preserving under the repo's
conventions* get a fixer — the point is to remove typing toil, not to
guess intent:

* ``DT001`` — append ``dtype=np.float64`` to a dtype-less
  ``np.asarray``/``np.array`` call (float64 end to end is the repo
  convention the rule enforces; the insertion makes the implicit
  contract explicit).
* ``DEF001`` — rewrite an *empty* mutable default (``[]``, ``{}``,
  ``set()``, ``list()``, ``dict()``) to ``None`` plus an
  ``if <param> is None: <param> = <literal>`` guard at the top of the
  body.  Non-empty defaults are left alone: pre-populated shared state
  usually means the author relied on the sharing, and that needs a
  human.

Fixes are computed as text edits against the original source and applied
bottom-up so earlier edits never invalidate later offsets.  ``--fix``
re-runs the checker afterwards, so anything a fix resolves disappears
from the report and anything it could not fix still fails the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.checks.findings import Finding

__all__ = ["FIXABLE_RULES", "fix_source", "fix_files"]


@dataclass(frozen=True)
class _Edit:
    """One text replacement; positions are (1-based line, 0-based col)."""

    start: tuple[int, int]
    end: tuple[int, int]
    replacement: str


def _node_at(tree: ast.Module, kind: type, line: int, col: int) -> ast.AST | None:
    for node in ast.walk(tree):
        if (
            isinstance(node, kind)
            and getattr(node, "lineno", None) == line
            and getattr(node, "col_offset", None) == col
        ):
            return node
    return None


# --------------------------------------------------------------------- DT001
def _fix_dtype(tree: ast.Module, source: str, finding: Finding) -> _Edit | None:
    call = _node_at(tree, ast.Call, finding.line, finding.col)
    if call is None or call.end_lineno is None:
        return None
    if any(kw.arg == "dtype" for kw in call.keywords) or len(call.args) >= 2:
        return None  # already fixed (stale finding)
    insertion = ", dtype=np.float64" if (call.args or call.keywords) else "dtype=np.float64"
    # Insert just before the closing paren of the call.
    return _Edit(
        start=(call.end_lineno, call.end_col_offset - 1),
        end=(call.end_lineno, call.end_col_offset - 1),
        replacement=insertion,
    )


# -------------------------------------------------------------------- DEF001
_EMPTY_CALLS = frozenset({"list", "dict", "set"})


def _empty_mutable_literal(node: ast.AST) -> str | None:
    """Canonical source for an empty mutable default, or None if not one."""
    if isinstance(node, ast.List) and not node.elts:
        return "[]"
    if isinstance(node, ast.Dict) and not node.keys:
        return "{}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _EMPTY_CALLS
        and not node.args
        and not node.keywords
    ):
        return f"{node.func.id}()"
    return None


def _param_for_default(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, default: ast.AST
) -> str | None:
    positional = fn.args.posonlyargs + fn.args.args
    tail = positional[len(positional) - len(fn.args.defaults):]
    for arg, d in zip(tail, fn.args.defaults):
        if d is default:
            return arg.arg
    for arg, d in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if d is default:
            return arg.arg
    return None


def _fix_mutable_default(
    tree: ast.Module, source: str, finding: Finding
) -> list[_Edit] | None:
    lines = source.splitlines()
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]:
            if (default.lineno, default.col_offset) != (finding.line, finding.col):
                continue
            literal = _empty_mutable_literal(default)
            param = _param_for_default(fn, default)
            if literal is None or param is None:
                return None  # non-mechanical: leave for a human
            first = fn.body[0]
            # Insert the guard after a docstring, before the first real stmt.
            if (
                isinstance(first, ast.Expr)
                and isinstance(first.value, ast.Constant)
                and isinstance(first.value.value, str)
                and len(fn.body) > 1
            ):
                first = fn.body[1]
            indent = lines[first.lineno - 1][: first.col_offset]
            guard = (
                f"if {param} is None:\n"
                f"{indent}    {param} = {literal}\n"
                f"{indent}"
            )
            return [
                _Edit(
                    start=(default.lineno, default.col_offset),
                    end=(default.end_lineno, default.end_col_offset),
                    replacement="None",
                ),
                _Edit(
                    start=(first.lineno, first.col_offset),
                    end=(first.lineno, first.col_offset),
                    replacement=guard,
                ),
            ]
    return None


# -------------------------------------------------------------------- RES001
def _fix_signal_capture(
    tree: ast.Module, source: str, finding: Finding
) -> list[_Edit] | None:
    """Capture a discarded ``signal.signal(...)`` result into a variable.

    ``signal.signal(signal.SIGTERM, h)`` becomes
    ``_previous_sigterm = signal.signal(signal.SIGTERM, h)`` — the handler
    is no longer lost; wiring the actual restore still needs the author
    (and the rule's message says how).
    """
    stmt = _node_at(tree, ast.Expr, finding.line, finding.col)
    if stmt is None or not isinstance(stmt.value, ast.Call):
        return None
    call = stmt.value
    name = "_previous_handler"
    if call.args:
        first = call.args[0]
        # signal.SIGTERM / SIGTERM -> _previous_sigterm
        signame = None
        if isinstance(first, ast.Attribute):
            signame = first.attr
        elif isinstance(first, ast.Name):
            signame = first.id
        if signame and signame.upper().startswith("SIG"):
            name = f"_previous_{signame.lower()}"
    return [
        _Edit(
            start=(stmt.lineno, stmt.col_offset),
            end=(stmt.lineno, stmt.col_offset),
            replacement=f"{name} = ",
        )
    ]


_FIXERS = {
    "DT001": lambda tree, src, f: (lambda e: [e] if e else None)(
        _fix_dtype(tree, src, f)
    ),
    "DEF001": _fix_mutable_default,
    "RES001": _fix_signal_capture,
}

#: Rules ``--fix`` can resolve mechanically.
FIXABLE_RULES = frozenset(_FIXERS)


def _apply(source: str, edits: list[_Edit]) -> str:
    lines = source.splitlines(keepends=True)
    for edit in sorted(edits, key=lambda e: e.start, reverse=True):
        (sl, sc), (el, ec) = edit.start, edit.end
        before = lines[sl - 1][:sc]
        after = lines[el - 1][ec:]
        lines[sl - 1 : el] = [before + edit.replacement + after]
    return "".join(lines)


def fix_source(source: str, findings: list[Finding]) -> tuple[str, int]:
    """Apply every available fix; returns (new_source, fixes_applied)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    edits: list[_Edit] = []
    applied = 0
    spans: set[tuple[int, int]] = set()
    for finding in findings:
        fixer = _FIXERS.get(finding.rule)
        if fixer is None:
            continue
        produced = fixer(tree, source, finding)
        if not produced:
            continue
        # Refuse overlapping edits from distinct findings (first wins).
        keys = {e.start for e in produced}
        if keys & spans:
            continue
        spans |= keys
        edits.extend(produced)
        applied += 1
    if not edits:
        return source, 0
    return _apply(source, edits), applied


def fix_files(findings: list[Finding]) -> int:
    """Group findings by file, rewrite each in place; returns fixes applied."""
    by_path: dict[str, list[Finding]] = {}
    for f in findings:
        if f.rule in FIXABLE_RULES:
            by_path.setdefault(f.path, []).append(f)
    total = 0
    for path, group in sorted(by_path.items()):
        p = Path(path)
        try:
            source = p.read_text()
        except OSError:
            continue
        new_source, applied = fix_source(source, group)
        if applied:
            p.write_text(new_source)
            total += applied
    return total