"""The checker engine: discover, parse, run rules, filter, report.

Pipeline per run:

1. discover ``.py`` files under the given paths;
2. parse each into a :class:`ModuleContext` (deriving the dotted module
   name by walking ``__init__.py`` packages upward), reporting syntax
   errors as ``PARSE001`` findings;
3. run every enabled rule's per-module pass, then the cross-module
   ``finalize`` pass;
4. drop findings suppressed by ``# repro: noqa[...]`` directives,
   reporting any *unknown* rule code named in a directive as a
   ``NOQA001`` note (a typo'd code suppresses nothing, silently);
5. split the remainder against the baseline.

The result's :attr:`CheckResult.findings` are the actionable ones — the
exit-code contract is simply ``bool(findings)``, severity-blind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.config import CheckConfig
from repro.checks.findings import Finding
from repro.checks.noqa import NoqaDirectives, parse_noqa
from repro.checks.rules import ALL_RULES
from repro.checks.rules.base import ModuleContext, ProjectContext, Rule

__all__ = ["CheckResult", "run_checks", "discover_files", "module_name_for"]

PARSE_RULE_ID = "PARSE001"
NOQA_RULE_ID = "NOQA001"


@dataclass
class CheckResult:
    """Outcome of one checker run."""

    findings: list[Finding] = field(default_factory=list)      # actionable
    baselined: list[Finding] = field(default_factory=list)     # grandfathered
    suppressed: int = 0                                        # noqa'd count
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def discover_files(paths: list[str | Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    out: set[Path] = set()
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def module_name_for(path: Path) -> str | None:
    """Dotted module name, derived from the ``__init__.py`` package chain."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or None


def run_checks(
    paths: list[str | Path],
    config: CheckConfig | None = None,
    baseline: Baseline | None = None,
    rules: tuple[type[Rule], ...] = ALL_RULES,
) -> CheckResult:
    """Run the configured rule battery over ``paths``."""
    config = config or CheckConfig()
    result = CheckResult()
    active = [
        cls(config.options_for(cls.id)) for cls in rules if config.is_enabled(cls.id)
    ]

    project = ProjectContext()
    raw: list[Finding] = []
    noqa_by_path: dict[str, NoqaDirectives] = {}

    for file in discover_files(paths):
        display = file.as_posix()
        try:
            source = file.read_text()
        except OSError as exc:
            raw.append(
                Finding(display, 1, 0, PARSE_RULE_ID, f"cannot read file: {exc}")
            )
            continue
        result.files_checked += 1
        noqa_by_path[display] = parse_noqa(source)
        try:
            ctx = ModuleContext.from_source(
                source,
                path=file.resolve(),
                display_path=display,
                module=module_name_for(file),
            )
        except SyntaxError as exc:
            raw.append(
                Finding(
                    display,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    PARSE_RULE_ID,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        project.modules.append(ctx)
        for rule in active:
            raw.extend(rule.check_module(ctx))

    for rule in active:
        raw.extend(rule.finalize(project))

    known_codes = {cls.id for cls in rules} | {PARSE_RULE_ID, NOQA_RULE_ID}
    for display, directives in sorted(noqa_by_path.items()):
        for line, code in directives.listed_codes():
            if code not in known_codes:
                raw.append(
                    Finding(
                        display,
                        line,
                        0,
                        NOQA_RULE_ID,
                        f"noqa directive names unknown rule code '{code}' "
                        "(it suppresses nothing); fix the code or drop it",
                        severity="note",
                    )
                )

    kept: list[Finding] = []
    for finding in sorted(set(raw)):
        directives = noqa_by_path.get(finding.path)
        if directives is not None and directives.is_suppressed(
            finding.line, finding.rule
        ):
            result.suppressed += 1
            continue
        kept.append(finding)

    if baseline is not None:
        result.findings, result.baselined = baseline.split(kept)
    else:
        result.findings = kept
    return result
