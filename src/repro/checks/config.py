"""Checker configuration: which rules run, with which options.

The defaults encode this repo's conventions; tests and the CLI override
them per run.  ``rule_options`` entries are merged over each rule's
``default_options`` (see :class:`repro.checks.rules.base.Rule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CheckConfig"]


@dataclass
class CheckConfig:
    """One checker run's configuration.

    Parameters
    ----------
    select:
        If non-empty, only these rule ids run.
    ignore:
        Rule ids that never run (applied after ``select``).
    rule_options:
        Per-rule option overrides, keyed by rule id.
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    rule_options: dict[str, dict] = field(default_factory=dict)

    def is_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select:
            return rule_id in self.select
        return True

    def options_for(self, rule_id: str) -> dict:
        return dict(self.rule_options.get(rule_id, {}))

    @classmethod
    def from_cli(
        cls,
        select: str | None = None,
        ignore: str | None = None,
    ) -> "CheckConfig":
        """Build a config from comma-separated CLI strings."""

        def split(spec: str | None) -> frozenset[str]:
            if not spec:
                return frozenset()
            return frozenset(s.strip().upper() for s in spec.split(",") if s.strip())

        return cls(select=split(select), ignore=split(ignore))
