"""Findings: what a rule reports, and how findings are rendered.

A :class:`Finding` pins a rule violation to a file and line.  Findings are
value objects — hashable, ordered by location — so the engine can sort,
deduplicate and diff them against a committed baseline.

Each finding carries a **severity tier** (``error`` > ``warning`` >
``note``, stamped from the reporting rule's class) and derives its **rule
family** from the id's alphabetic prefix (``THR003`` -> ``THR``).  Both
feed the SARIF renderer (:mod:`repro.checks.sarif`) and the v2 baseline
format; the exit-code contract stays severity-blind (any unsuppressed
finding fails the run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Finding", "SEVERITIES", "format_text", "format_json", "rule_family"]

#: Recognized severity tiers, most severe first.
SEVERITIES = ("error", "warning", "note")


def rule_family(rule_id: str) -> str:
    """The alphabetic prefix of a rule id: ``THR003`` -> ``THR``."""
    head = rule_id.rstrip("0123456789")
    return head or rule_id


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str          # posix path as scanned (stable across runs from repo root)
    line: int          # 1-based line of the offending node
    col: int           # 0-based column
    rule: str          # rule identifier, e.g. "RNG001"
    message: str       # human-readable explanation
    symbol: str = field(default="", compare=False)  # enclosing def/class, if known
    severity: str = field(default="warning", compare=False)  # error|warning|note

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def family(self) -> str:
        """Rule family: the id's alphabetic prefix (``ALS002`` -> ``ALS``)."""
        return rule_family(self.rule)

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes line/column so the baseline survives
        unrelated edits that shift code up or down a file.
        """
        return (self.path, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "family": self.family,
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
        }


def format_text(findings: list[Finding]) -> str:
    """One `path:line:col: RULE message` row per finding, plus a summary."""
    rows = [f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings]
    n = len(findings)
    summary = f"{n} finding{'s' if n != 1 else ''}"
    by_severity = {
        sev: sum(1 for f in findings if f.severity == sev) for sev in SEVERITIES
    }
    detail = ", ".join(
        f"{count} {sev}{'s' if count != 1 else ''}"
        for sev, count in by_severity.items()
        if count
    )
    rows.append(f"{summary} ({detail})" if detail else summary)
    return "\n".join(rows)


def format_json(findings: list[Finding], *, baselined: int = 0) -> str:
    """Machine-readable report (consumed by CI)."""
    return json.dumps(
        {
            "version": 2,
            "count": len(findings),
            "baselined": baselined,
            "findings": [f.as_dict() for f in findings],
        },
        indent=2,
        sort_keys=True,
    )
