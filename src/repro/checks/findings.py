"""Findings: what a rule reports, and how findings are rendered.

A :class:`Finding` pins a rule violation to a file and line.  Findings are
value objects — hashable, ordered by location — so the engine can sort,
deduplicate and diff them against a committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Finding", "format_text", "format_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str          # posix path as scanned (stable across runs from repo root)
    line: int          # 1-based line of the offending node
    col: int           # 0-based column
    rule: str          # rule identifier, e.g. "RNG001"
    message: str       # human-readable explanation
    symbol: str = field(default="", compare=False)  # enclosing def/class, if known

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes line/column so the baseline survives
        unrelated edits that shift code up or down a file.
        """
        return (self.path, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
        }


def format_text(findings: list[Finding]) -> str:
    """One `path:line:col: RULE message` row per finding, plus a summary."""
    rows = [f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings]
    n = len(findings)
    rows.append(f"{n} finding{'s' if n != 1 else ''}")
    return "\n".join(rows)


def format_json(findings: list[Finding], *, baselined: int = 0) -> str:
    """Machine-readable report (consumed by CI)."""
    return json.dumps(
        {
            "version": 1,
            "count": len(findings),
            "baselined": baselined,
            "findings": [f.as_dict() for f in findings],
        },
        indent=2,
        sort_keys=True,
    )
