"""``python -m repro.checks`` — the static-analysis front-end.

Exit-code contract (stable, severity-blind, relied on by CI):

* ``0`` — clean: no unsuppressed, un-baselined findings (also returned
  by the non-checking modes ``--list-rules``, ``--write-baseline`` and
  ``--migrate-baseline``);
* ``1`` — findings: at least one actionable finding, of any severity;
* ``2`` — usage or internal error: bad flags, unknown rule ids, no
  files to check, or the checker itself crashed.

``main()`` is a pure function of ``argv`` — argparse's ``SystemExit``
is caught and normalized to the same contract, so tests and embedders
never have to guard against a raising CLI.
"""

from __future__ import annotations

import argparse
import sys

from repro.checks.baseline import load_baseline, migrate_baseline, write_baseline
from repro.checks.config import CheckConfig
from repro.checks.engine import run_checks
from repro.checks.findings import format_json, format_text
from repro.checks.fixes import FIXABLE_RULES, fix_files
from repro.checks.rules import ALL_RULES
from repro.checks.sarif import format_sarif

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="AST-based checks for this repo's numerical-correctness invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text; sarif for code-scanning upload)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--migrate-baseline",
        action="store_true",
        help="upgrade --baseline to the v2 format in place and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=f"apply mechanical autofixes ({', '.join(sorted(FIXABLE_RULES))}) "
        "and re-check",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES", help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule battery and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; normalize to
        # the documented contract instead of letting the exception escape.
        return int(exc.code or 0)

    if args.list_rules:
        for cls in ALL_RULES:
            fixable = "  [--fix]" if cls.id in FIXABLE_RULES else ""
            print(
                f"{cls.id}  {cls.severity:7s}  {cls.name:28s} "
                f"{cls.description}{fixable}"
            )
        return EXIT_CLEAN

    if (args.write_baseline or args.migrate_baseline) and not args.baseline:
        flag = "--write-baseline" if args.write_baseline else "--migrate-baseline"
        print(f"error: {flag} requires --baseline FILE", file=sys.stderr)
        return EXIT_USAGE

    if args.migrate_baseline:
        changed = migrate_baseline(args.baseline)
        state = "migrated to v2" if changed else "already current"
        print(f"{args.baseline}: {state}")
        return EXIT_CLEAN

    config = CheckConfig.from_cli(select=args.select, ignore=args.ignore)
    known = {cls.id for cls in ALL_RULES}
    unknown = (config.select | config.ignore) - known
    if unknown:
        print(
            f"error: unknown rule id(s) {sorted(unknown)}; "
            f"known: {sorted(known)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    baseline = load_baseline(args.baseline) if args.baseline else None
    try:
        result = run_checks(args.paths, config=config, baseline=baseline)
        if args.fix and result.findings:
            applied = fix_files(result.findings)
            if applied:
                print(f"applied {applied} fix(es); re-checking", file=sys.stderr)
                result = run_checks(args.paths, config=config, baseline=baseline)
    except Exception as exc:  # internal error, not a finding
        print(f"internal error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if result.files_checked == 0:
        print(f"error: no python files under {args.paths}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        all_findings = result.findings + result.baselined
        write_baseline(args.baseline, all_findings)
        print(f"wrote {len(all_findings)} finding(s) to {args.baseline}")
        return EXIT_CLEAN

    if args.format == "json":
        print(format_json(result.findings, baselined=len(result.baselined)))
    elif args.format == "sarif":
        print(format_sarif(result.findings, ALL_RULES))
    else:
        print(format_text(result.findings))
        if result.baselined:
            print(f"({len(result.baselined)} baselined finding(s) not shown)")
    return EXIT_FINDINGS if result.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
