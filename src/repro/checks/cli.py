"""``python -m repro.checks`` — the static-analysis front-end.

Exit codes: ``0`` clean (against the baseline, if any), ``1`` findings,
``2`` usage or internal error — so CI can distinguish "violations" from
"the checker itself broke".
"""

from __future__ import annotations

import argparse
import sys

from repro.checks.baseline import load_baseline, write_baseline
from repro.checks.config import CheckConfig
from repro.checks.engine import run_checks
from repro.checks.findings import format_json, format_text
from repro.checks.rules import ALL_RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="AST-based checks for this repo's numerical-correctness invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES", help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule battery and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.id}  {cls.name:28s} {cls.description}")
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    config = CheckConfig.from_cli(select=args.select, ignore=args.ignore)
    known = {cls.id for cls in ALL_RULES}
    unknown = (config.select | config.ignore) - known
    if unknown:
        print(
            f"error: unknown rule id(s) {sorted(unknown)}; "
            f"known: {sorted(known)}",
            file=sys.stderr,
        )
        return 2
    baseline = load_baseline(args.baseline) if args.baseline else None
    try:
        result = run_checks(args.paths, config=config, baseline=baseline)
    except Exception as exc:  # internal error, not a finding
        print(f"internal error: {exc}", file=sys.stderr)
        return 2

    if result.files_checked == 0:
        print(f"error: no python files under {args.paths}", file=sys.stderr)
        return 2

    if args.write_baseline:
        all_findings = result.findings + result.baselined
        write_baseline(args.baseline, all_findings)
        print(f"wrote {len(all_findings)} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(format_json(result.findings, baselined=len(result.baselined)))
    else:
        print(format_text(result.findings))
        if result.baselined:
            print(f"({len(result.baselined)} baselined finding(s) not shown)")
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
