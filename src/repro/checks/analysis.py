"""Project-wide semantic model: symbol table, call graph, function summaries.

The original ``repro.checks`` rules were single-module AST lints.  The
concurrency (``THR0xx``) and aliasing (``ALS0xx``) families need to reason
*across* modules — "which function does this ``threading.Thread(target=...)``
actually run", "does the ``out=`` parameter of this fused kernel alias its
input at any call site" — so this module builds one shared semantic model
per checker run:

* :class:`ProjectModel` — built lazily from a
  :class:`~repro.checks.rules.base.ProjectContext` (and cached on it, so
  every rule shares one model):

  - an **import table** per module mapping local aliases to dotted targets
    (``from repro.perf.shm import SharedArrayBundle`` ⇒
    ``SharedArrayBundle -> repro.perf.shm.SharedArrayBundle``), with
    relative imports resolved and package re-exports followed;
  - a **symbol table** of every function, method and class, keyed by
    qualified name (``repro.perf.campaign.CampaignScheduler.run``),
    including functions nested inside other functions
    (``...outer.<locals>.inner`` — thread targets are usually closures);
  - a per-function :class:`FunctionSummary` of the facts the rule
    families consume: captured-state writes and whether a lock is held,
    lock acquire/release balance, thread spawns and joins, shared-memory
    creations and their cleanup, ``out=`` aliasing flows through
    parameters, and resolved callees;
  - a **call graph** over the summaries (:meth:`ProjectModel.callees`,
    :meth:`ProjectModel.reachable_from`).

Everything here is a sound-ish, deliberately shallow approximation: names
are resolved syntactically, attribute chains only through ``self`` and
imported modules, and reachability is bounded.  Rules built on the model
therefore phrase findings as "cannot be proven" rather than "is wrong",
and every finding can be suppressed with ``# repro: noqa[RULE-ID]`` plus a
justification (see ``docs/CHECKS.md``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.checks.rules.base import ModuleContext, ProjectContext

__all__ = [
    "CapturedWrite",
    "FunctionInfo",
    "FunctionSummary",
    "LockOp",
    "OutFlow",
    "ProjectModel",
    "ShmCreation",
    "ThreadSpawn",
    "build_model",
]

#: Receiver-method calls that are safe to issue from any thread without an
#: explicit lock (thread-safe primitives: queues, events, semaphores, …).
THREAD_SAFE_METHODS = frozenset(
    {
        "put",
        "put_nowait",
        "get",
        "get_nowait",
        "task_done",
        "join",
        "set",
        "is_set",
        "clear",
        "wait",
        "release",
        "acquire",
        "inc",
        "dec",
        "observe",
    }
)

#: Heuristic: a ``with`` context expression whose terminal name matches this
#: counts as holding a lock for the duration of the block.  Condition
#: variables are context-manager locks too, but ``cond`` is anchored to a
#: name-segment start so ``second``/``precondition`` don't pass as locks.
_LOCKLIKE_NAME = re.compile(r"(lock|mutex|guard|sem|semaphore|(^|_)cond)", re.IGNORECASE)

#: numpy operations whose ``out=`` must not alias any input operand
#: (reduction/contraction kernels read inputs while writing the output).
ALIAS_UNSAFE_OPS = frozenset({"matmul", "dot", "inner", "outer", "einsum", "tensordot"})


# --------------------------------------------------------------------------
# summary facts


@dataclass
class CapturedWrite:
    """A write to state shared with an enclosing scope (or to ``self``)."""

    node: ast.AST
    name: str              # root name written through ("results", "self.busy")
    kind: str              # "assign" | "augassign" | "mutating-call"
    detail: str            # e.g. "results[i] = ..." rendering for messages
    locked: bool           # lexically under a lock-holding ``with``


@dataclass
class LockOp:
    """One direct ``<recv>.acquire()`` / ``<recv>.release()`` call."""

    node: ast.AST
    receiver: str
    op: str                # "acquire" | "release"
    in_with: bool          # the call is a ``with`` context expression
    in_finally: bool       # the call sits inside a ``finally`` block


@dataclass
class ThreadSpawn:
    """A ``threading.Thread(...)`` construction or ``executor.submit(fn)``."""

    node: ast.AST
    target: str | None     # syntactic target expression ("worker", "self.run")
    daemon: bool
    assigned_to: str | None
    kind: str              # "thread" | "submit"


@dataclass
class ShmCreation:
    """A ``SharedMemory(create=True)`` / ``SharedArrayBundle.create()`` call."""

    node: ast.AST
    assigned_to: str | None
    in_with: bool          # created as a ``with`` context manager
    escapes: bool          # returned / stored / passed on — ownership moves
    closed_in_finally: bool


@dataclass
class OutFlow:
    """Within one function: parameter ``out_param`` is written by an
    alias-unsafe op that reads parameter ``in_param``."""

    node: ast.AST
    in_param: str
    out_param: str
    op: str                # the np op name ("matmul", ...)


@dataclass
class FunctionSummary:
    """Per-function facts consumed by the THR/ALS rule families."""

    qualname: str
    node: ast.AST
    params: list[str] = field(default_factory=list)
    locals: set[str] = field(default_factory=set)
    captured_writes: list[CapturedWrite] = field(default_factory=list)
    lock_ops: list[LockOp] = field(default_factory=list)
    thread_spawns: list[ThreadSpawn] = field(default_factory=list)
    shm_creations: list[ShmCreation] = field(default_factory=list)
    out_flows: list[OutFlow] = field(default_factory=list)
    calls: list[tuple[ast.Call, str]] = field(default_factory=list)  # (node, dotted expr)
    joined: set[str] = field(default_factory=set)      # names .join()ed
    buffer_vars: set[str] = field(default_factory=set)  # names bound from *.buffer(...)


@dataclass
class FunctionInfo:
    """One function/method (possibly nested) in the scanned project."""

    qualname: str          # "repro.perf.campaign.CampaignScheduler.run"
    module: str
    ctx: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None   # enclosing class qualname, for methods
    parent: str | None = None       # enclosing function qualname, for closures


# --------------------------------------------------------------------------
# expression helpers


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> str | None:
    """The base Name an expression reads/writes through (``a`` of ``a.b[c].d``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_locklike(expr: ast.AST, known_locks: set[str]) -> bool:
    name = dotted(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted(expr.func)
    if name is None:
        return False
    if name in known_locks:
        return True
    terminal = name.rsplit(".", 1)[-1]
    return bool(_LOCKLIKE_NAME.search(terminal))


def _render(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all real nodes
        return "<expr>"
    return text if len(text) <= 60 else text[:57] + "..."


_SHM_CTORS = ("SharedMemory",)
_SHM_FACTORIES = ("SharedArrayBundle.create", "ShareableList")


def _is_shm_creation(call: ast.Call) -> bool:
    """True for ``SharedMemory(create=True, ...)`` and bundle factories."""
    name = dotted(call.func)
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1]
    if terminal in _SHM_CTORS:
        for kw in call.keywords:
            if kw.arg == "create":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                )
        if len(call.args) >= 2:  # SharedMemory(name, create, ...)
            arg = call.args[1]
            return not (isinstance(arg, ast.Constant) and arg.value is False)
        return False
    return any(name.endswith(factory) for factory in _SHM_FACTORIES)


def _thread_spawn(call: ast.Call) -> tuple[str | None, bool, str] | None:
    """``(target expr, daemon, kind)`` when ``call`` spawns concurrent work."""
    name = dotted(call.func)
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1]
    if terminal == "Thread":
        target = None
        daemon = False
        for kw in call.keywords:
            if kw.arg == "target":
                target = dotted(kw.value)
            elif kw.arg == "daemon":
                daemon = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                )
        return target, daemon, "thread"
    if terminal in ("submit", "apply_async"):
        if call.args:
            return dotted(call.args[0]), True, "submit"
        return None, True, "submit"
    return None


# --------------------------------------------------------------------------
# the summarizing visitor


class _Summarizer:
    """Walks one function body computing its :class:`FunctionSummary`."""

    def __init__(self, info: FunctionInfo, module_locks: set[str]) -> None:
        self.info = info
        self.summary = FunctionSummary(qualname=info.qualname, node=info.node)
        node = info.node
        args = node.args
        self.summary.params = [
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        ] + [a.arg for a in (args.vararg, args.kwarg) if a is not None]
        self._locals: set[str] = set(self.summary.params)
        self._globals: set[str] = set()
        self._known_locks = set(module_locks)
        self._collect_locals(node)
        self.summary.locals = self._locals

    # -------------------------------------------------------- local binding
    def _collect_locals(self, fn: ast.AST) -> None:
        """Names bound in this function's own scope (not nested functions)."""
        for stmt in _walk_scoped(fn):
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                self._globals.update(stmt.names)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._bind_target(target)
                self._note_lock_binding(stmt.targets, stmt.value)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(stmt.target, ast.Name):
                    self._locals.add(stmt.target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_target(stmt.target)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._locals.add(stmt.name)
            elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
                self._locals.add(stmt.name)
            elif isinstance(stmt, (ast.comprehension,)):
                self._bind_target(stmt.target)
        self._locals -= self._globals

    def _bind_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._locals.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)

    def _note_lock_binding(self, targets: list[ast.AST], value: ast.AST) -> None:
        if not isinstance(value, ast.Call):
            return
        name = dotted(value.func) or ""
        if name.rsplit(".", 1)[-1] in (
            "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    self._known_locks.add(target.id)

    # ------------------------------------------------------------ main walk
    def run(self) -> FunctionSummary:
        self._visit_body(self.info.node.body, locked=False, in_finally=False)
        return self.summary

    def _is_shared(self, name: str | None) -> bool:
        """A write through ``name`` touches state visible outside this call."""
        if name is None:
            return False
        if name == "self" or name in self._globals:
            return True
        return name not in self._locals

    def _visit_body(self, body: list[ast.stmt], locked: bool, in_finally: bool) -> None:
        for stmt in body:
            self._visit_stmt(stmt, locked, in_finally)

    def _visit_stmt(self, stmt: ast.stmt, locked: bool, in_finally: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own summaries
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            holds = locked or any(
                _is_locklike(item.context_expr, self._known_locks)
                for item in stmt.items
            )
            for item in stmt.items:
                self._scan_expr(item.context_expr, locked, in_with=True)
            self._visit_body(stmt.body, holds, in_finally)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body, locked, in_finally)
            for handler in stmt.handlers:
                self._visit_body(handler.body, locked, in_finally)
            self._visit_body(stmt.orelse, locked, in_finally)
            self._visit_body(stmt.finalbody, locked, in_finally=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, locked)
            else:
                self._scan_expr(stmt.iter, locked)
                self._record_store(stmt.target, stmt, locked, kind="assign")
            self._visit_body(stmt.body, locked, in_finally)
            self._visit_body(stmt.orelse, locked, in_finally)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, locked)
            self._visit_body(stmt.body, locked, in_finally)
            self._visit_body(stmt.orelse, locked, in_finally)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, locked)
            for target in stmt.targets:
                self._record_store(target, stmt, locked, kind="assign")
            self._note_buffer_binding(stmt.targets, stmt.value)
            self._note_creation_assignment(stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, locked)
            self._record_store(stmt.target, stmt, locked, kind="augassign")
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, locked)
                self._record_store(stmt.target, stmt, locked, kind="assign")
            return
        if isinstance(stmt, (ast.Expr, ast.Return)):
            value = stmt.value
            if value is not None:
                self._scan_expr(value, locked, in_finally=in_finally)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, locked)
            return
        if isinstance(stmt, ast.Delete):
            return
        if isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test, locked)
            return
        # pass/break/continue/import/global/nonlocal: nothing to record
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, locked)

    # ------------------------------------------------------- store tracking
    def _record_store(
        self, target: ast.AST, stmt: ast.stmt, locked: bool, kind: str
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, stmt, locked, kind)
            return
        if isinstance(target, ast.Name):
            # Rebinding a local (or even a global name, absent a ``global``
            # declaration it would be a local) is not a shared-state write.
            if target.id in self._globals:
                self.summary.captured_writes.append(
                    CapturedWrite(stmt, target.id, kind, _render(stmt), locked)
                )
            return
        root = root_name(target)
        if self._is_shared(root):
            label = root if root != "self" else (dotted(target) or "self.<attr>")
            self.summary.captured_writes.append(
                CapturedWrite(stmt, label, kind, _render(stmt), locked)
            )

    def _note_buffer_binding(self, targets: list[ast.AST], value: ast.AST) -> None:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "buffer"
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    self.summary.buffer_vars.add(target.id)

    def _note_creation_assignment(self, stmt: ast.Assign) -> None:
        if not (isinstance(stmt.value, ast.Call) and _is_shm_creation(stmt.value)):
            return
        assigned = None
        escapes = False
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                assigned = target.id
            else:
                escapes = True  # stored straight into an attribute/container
        # The generic expression scan may have recorded this same call with
        # no binding info; the assignment-aware record replaces it.
        self.summary.shm_creations = [
            c for c in self.summary.shm_creations if c.node is not stmt.value
        ]
        self.summary.shm_creations.append(
            ShmCreation(stmt.value, assigned, in_with=False, escapes=escapes,
                        closed_in_finally=False)
        )

    # ---------------------------------------------------------- expressions
    def _scan_expr(
        self, expr: ast.AST, locked: bool, in_with: bool = False, in_finally: bool = False
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            self._scan_call(node, locked, in_with=in_with and node is expr,
                            in_finally=in_finally)

    def _scan_call(
        self, call: ast.Call, locked: bool, in_with: bool, in_finally: bool
    ) -> None:
        name = dotted(call.func)
        self.summary.calls.append((call, name or ""))

        # lock acquire/release
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "acquire",
            "release",
        ):
            recv = dotted(call.func.value)
            if recv is not None:
                self.summary.lock_ops.append(
                    LockOp(call, recv, call.func.attr, in_with, in_finally)
                )

        # thread spawns
        spawned = _thread_spawn(call)
        if spawned is not None:
            target, daemon, kind = spawned
            self.summary.thread_spawns.append(
                ThreadSpawn(call, target, daemon, None, kind)
            )

        # joins: thread.join()
        if isinstance(call.func, ast.Attribute) and call.func.attr == "join":
            recv = root_name(call.func.value)
            if recv is not None:
                self.summary.joined.add(recv)

        # shm creations in expression position (with-statements, returns)
        if _is_shm_creation(call):
            already = any(c.node is call for c in self.summary.shm_creations)
            if not already:
                self.summary.shm_creations.append(
                    ShmCreation(call, None, in_with=in_with, escapes=not in_with,
                                closed_in_finally=False)
                )

        # mutating calls on shared receivers (append/extend/update/...)
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "append",
            "extend",
            "insert",
            "update",
            "add",
            "pop",
            "popitem",
            "remove",
            "discard",
            "setdefault",
            "clear",
            "fill",
        ):
            root = root_name(call.func.value)
            if self._is_shared(root) and call.func.attr not in THREAD_SAFE_METHODS:
                label = root if root != "self" else (dotted(call.func.value) or "self")
                self.summary.captured_writes.append(
                    CapturedWrite(
                        call, label, "mutating-call", _render(call), locked
                    )
                )

        # out= aliasing flows through parameters
        self._scan_out_flow(call)

    def _scan_out_flow(self, call: ast.Call) -> None:
        name = dotted(call.func) or ""
        terminal = name.rsplit(".", 1)[-1]
        if terminal not in ALIAS_UNSAFE_OPS:
            return
        out = next((kw.value for kw in call.keywords if kw.arg == "out"), None)
        if out is None:
            return
        out_root = root_name(out)
        if out_root not in self.summary.params:
            return
        for arg in call.args:
            in_root = root_name(arg)
            if (
                in_root in self.summary.params
                and in_root != out_root
                and not isinstance(arg, ast.Constant)
            ):
                self.summary.out_flows.append(
                    OutFlow(call, in_root, out_root, terminal)
                )


def _walk_scoped(fn: ast.AST):
    """Walk a function's own scope: skip nested function/class bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# --------------------------------------------------------------------------
# the project model


class ProjectModel:
    """Import-resolved symbols, summaries and the call graph of one run."""

    #: bound on interprocedural reachability walks (spawn target + callees)
    MAX_DEPTH = 3

    def __init__(self, project: ProjectContext) -> None:
        self.modules: dict[str, ModuleContext] = project.by_module()
        self.imports: dict[str, dict[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, set[str]] = {}  # class qualname -> method names
        self._module_locks: dict[str, set[str]] = {}
        self._summaries: dict[str, FunctionSummary] = {}
        for name, ctx in self.modules.items():
            self.imports[name] = self._import_table(name, ctx)
            self._module_locks[name] = self._locks_of(ctx)
            self._index_module(name, ctx)

    # --------------------------------------------------------------- builds
    def _import_table(self, module: str, ctx: ModuleContext) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        table[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, module, ctx)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    def _resolve_from(
        self, stmt: ast.ImportFrom, module: str, ctx: ModuleContext
    ) -> str | None:
        if stmt.level == 0:
            return stmt.module
        parts = module.split(".")
        if ctx.path.name != "__init__.py":
            parts = parts[:-1]
        drop = stmt.level - 1
        if drop > len(parts):
            return None
        parts = parts[: len(parts) - drop] if drop else parts
        base = ".".join(parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    def _locks_of(self, ctx: ModuleContext) -> set[str]:
        """Module-level names bound to lock constructors."""
        locks: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                name = dotted(stmt.value.func) or ""
                if name.rsplit(".", 1)[-1] in ("Lock", "RLock", "Condition"):
                    locks.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
        return locks

    def _index_module(self, module: str, ctx: ModuleContext) -> None:
        def index_function(
            node: ast.FunctionDef | ast.AsyncFunctionDef,
            qual: str,
            class_name: str | None,
            parent: str | None,
        ) -> None:
            info = FunctionInfo(qual, module, ctx, node, class_name, parent)
            self.functions[qual] = info
            for child in node.body:
                self._index_nested(child, f"{qual}.<locals>", qual, module, ctx)

        def index_class(node: ast.ClassDef, qual: str) -> None:
            methods: set[str] = set()
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(child.name)
                    index_function(child, f"{qual}.{child.name}", qual, None)
                elif isinstance(child, ast.ClassDef):
                    index_class(child, f"{qual}.{child.name}")
            self.classes[qual] = methods

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index_function(stmt, f"{module}.{stmt.name}", None, None)
            elif isinstance(stmt, ast.ClassDef):
                index_class(stmt, f"{module}.{stmt.name}")

    def _index_nested(
        self,
        stmt: ast.stmt,
        prefix: str,
        parent: str,
        module: str,
        ctx: ModuleContext,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}.{stmt.name}"
            info = FunctionInfo(qual, module, ctx, stmt, None, parent)
            self.functions[qual] = info
            for child in stmt.body:
                self._index_nested(child, f"{qual}.<locals>", qual, module, ctx)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._index_nested(child, prefix, parent, module, ctx)

    # ------------------------------------------------------------ summaries
    def summary(self, qualname: str) -> FunctionSummary | None:
        info = self.functions.get(qualname)
        if info is None:
            return None
        cached = self._summaries.get(qualname)
        if cached is None:
            locks = set(self._module_locks.get(info.module, ()))
            cached = _Summarizer(info, locks).run()
            self._summaries[qualname] = cached
        return cached

    # ------------------------------------------------------------ resolution
    def resolve(self, expr: str | None, scope: FunctionInfo) -> str | None:
        """Resolve a dotted source expression to a project qualname.

        Handles locals-nested siblings (``fail`` inside the same enclosing
        function), ``self.method``, module-level names, imported names and
        package re-exports (followed through ``__init__`` import tables).
        """
        if not expr:
            return None
        parts = expr.split(".")
        head, rest = parts[0], parts[1:]

        # self.method -> enclosing class method (walking out of closures)
        if head == "self" and rest:
            walk: FunctionInfo | None = scope
            while walk is not None and walk.class_name is None:
                walk = self.functions.get(walk.parent) if walk.parent else None
            if walk is not None and walk.class_name:
                candidate = f"{walk.class_name}.{rest[0]}"
                if candidate in self.functions:
                    return candidate

        # sibling nested function in any enclosing function
        parent = scope.parent
        probe = scope.qualname
        while True:
            candidate = f"{probe}.<locals>.{head}"
            if candidate in self.functions and not rest:
                return candidate
            if parent is None:
                break
            probe, parent = parent, self.functions.get(parent) and self.functions[parent].parent

        # module-level name in the same module
        candidate = self._follow(f"{scope.module}.{expr}")
        if candidate is not None:
            return candidate

        # imported alias
        table = self.imports.get(scope.module, {})
        if head in table:
            target = table[head]
            full = ".".join([target] + rest) if rest else target
            return self._follow(full)
        return None

    def _follow(self, full: str, depth: int = 0) -> str | None:
        """Chase a dotted name through re-export tables to a known function."""
        if depth > 4:
            return None
        if full in self.functions:
            return full
        if full in self.classes:  # constructor call resolves to __init__
            init = f"{full}.__init__"
            return init if init in self.functions else None
        # Class constructor or Class.method
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.classes:
                remainder = parts[cut:]
                if not remainder:
                    return None
                candidate = f"{prefix}.{remainder[0]}"
                if candidate in self.functions:
                    return candidate
                return None
            if prefix in self.imports:
                table = self.imports[prefix]
                head = parts[cut]
                if head in table:
                    rebased = ".".join([table[head]] + parts[cut + 1 :])
                    return self._follow(rebased, depth + 1)
        return None

    # ------------------------------------------------------------ call graph
    def callees(self, qualname: str) -> set[str]:
        summary = self.summary(qualname)
        if summary is None:
            return set()
        info = self.functions[qualname]
        out: set[str] = set()
        for _node, expr in summary.calls:
            resolved = self.resolve(expr, info)
            if resolved is not None and resolved != qualname:
                out.add(resolved)
        return out

    def reachable_from(self, qualname: str, depth: int | None = None) -> list[str]:
        """Qualnames reachable from ``qualname`` (inclusive), BFS-bounded."""
        limit = self.MAX_DEPTH if depth is None else depth
        seen = {qualname}
        frontier = [qualname]
        order = [qualname]
        for _ in range(limit):
            nxt: list[str] = []
            for name in frontier:
                for callee in sorted(self.callees(name)):
                    if callee not in seen:
                        seen.add(callee)
                        order.append(callee)
                        nxt.append(callee)
            frontier = nxt
            if not frontier:
                break
        return order


def build_model(project: ProjectContext) -> ProjectModel:
    """The shared :class:`ProjectModel` for one run (cached on the context)."""
    model = getattr(project, "_model", None)
    if model is None:
        model = ProjectModel(project)
        project._model = model
    return model
