"""SARIF 2.1.0 rendering for checker findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so ``repro check --format sarif`` lets CI upload
findings straight into the PR's security tab.  The renderer emits one
``run`` with:

* a ``tool.driver`` listing every rule in the battery (id, short
  description, default severity) so viewers can show rule help even for
  rules with no findings in this run;
* one ``result`` per finding, with the SARIF ``level`` mapped from the
  repo severity tier (``error`` -> ``error``, ``warning`` -> ``warning``,
  ``note`` -> ``note``) and a ``partialFingerprints`` entry mirroring
  the baseline fingerprint so code scanning deduplicates across pushes.

Only the fields code scanning consumes are emitted; the document
validates against the 2.1.0 schema's required-property set.
"""

from __future__ import annotations

import hashlib
import json

from repro.checks.findings import Finding
from repro.checks.rules.base import Rule

__all__ = ["SARIF_VERSION", "sarif_report", "format_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro severity tier -> SARIF result level (identity today, but kept as
#: an explicit table so the two vocabularies can drift independently).
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(cls: type[Rule]) -> dict:
    return {
        "id": cls.id,
        "name": cls.name,
        "shortDescription": {"text": cls.description},
        "defaultConfiguration": {"level": _LEVELS[cls.severity]},
        "helpUri": f"https://example.invalid/docs/CHECKS.md#{cls.id.lower()}",
    }


def _result(finding: Finding) -> dict:
    fingerprint = hashlib.sha256(
        "\x1f".join(finding.fingerprint()).encode()
    ).hexdigest()
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,  # SARIF is 1-based
                    },
                },
                "logicalLocations": (
                    [{"name": finding.symbol, "kind": "function"}]
                    if finding.symbol
                    else []
                ),
            }
        ],
        "partialFingerprints": {"reproChecksFingerprint/v1": fingerprint},
    }


def sarif_report(
    findings: list[Finding],
    rules: tuple[type[Rule], ...] = (),
) -> dict:
    """The SARIF log as a plain dict (one run, one tool)."""
    known = {cls.id for cls in rules}
    descriptors = [_rule_descriptor(cls) for cls in rules]
    # Findings from pseudo-rules (PARSE001, NOQA001) are not in the
    # battery; synthesize minimal descriptors so every result's ruleId
    # resolves within the document.
    for finding in findings:
        if finding.rule not in known:
            known.add(finding.rule)
            descriptors.append(
                {
                    "id": finding.rule,
                    "name": finding.rule.lower(),
                    "shortDescription": {"text": f"{finding.family} diagnostics"},
                    "defaultConfiguration": {"level": _LEVELS[finding.severity]},
                }
            )
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "informationUri": "https://example.invalid/docs/CHECKS.md",
                        "rules": sorted(descriptors, key=lambda d: d["id"]),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f) for f in findings],
            }
        ],
    }


def format_sarif(
    findings: list[Finding],
    rules: tuple[type[Rule], ...] = (),
) -> str:
    return json.dumps(sarif_report(findings, rules), indent=2, sort_keys=True)