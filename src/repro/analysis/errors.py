"""Where-and-why error diagnostics for reconstructions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.grid import UniformGrid
from repro.sampling.base import SampledField

__all__ = [
    "ErrorSummary",
    "error_field",
    "error_summary",
    "error_vs_sample_distance",
    "error_by_value_band",
    "worst_regions",
]


def error_field(original: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
    """Signed error ``reconstructed - original`` (same shape as inputs)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return b - a


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution statistics of the signed error."""

    mean: float       # bias
    std: float
    rmse: float
    mae: float
    p95_abs: float    # 95th percentile of |error|
    max_abs: float

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "rmse": self.rmse,
            "mae": self.mae,
            "p95_abs": self.p95_abs,
            "max_abs": self.max_abs,
        }


def error_summary(original: np.ndarray, reconstructed: np.ndarray) -> ErrorSummary:
    """Summarize the signed-error distribution."""
    err = error_field(original, reconstructed).ravel()
    if err.size == 0:
        raise ValueError("cannot summarize empty fields")
    abs_err = np.abs(err)
    return ErrorSummary(
        mean=float(err.mean()),
        std=float(err.std()),
        rmse=float(np.sqrt(np.mean(err**2))),
        mae=float(abs_err.mean()),
        p95_abs=float(np.percentile(abs_err, 95)),
        max_abs=float(abs_err.max()),
    )


def error_vs_sample_distance(
    original: np.ndarray,
    reconstructed: np.ndarray,
    sample: SampledField,
    num_bins: int = 8,
) -> list[dict]:
    """RMSE binned by distance to the nearest sampled point.

    Returns one record per non-empty bin: ``{"distance": bin center,
    "rmse": ..., "count": ...}``, distances in physical units.  Bin 0
    contains the sampled points themselves (zero error when the grids
    match, a useful self-check).
    """
    if num_bins < 2:
        raise ValueError(f"need at least 2 bins, got {num_bins}")
    grid = sample.grid
    err = error_field(grid.validate_field(original), grid.validate_field(reconstructed)).ravel()
    dist, _ = cKDTree(sample.points).query(grid.points(), k=1)

    edges = np.linspace(0.0, float(dist.max()) + 1e-12, num_bins + 1)
    which = np.clip(np.digitize(dist, edges[1:-1]), 0, num_bins - 1)
    rows = []
    for b in range(num_bins):
        members = which == b
        if not members.any():
            continue
        rows.append(
            {
                "distance": float(0.5 * (edges[b] + edges[b + 1])),
                "rmse": float(np.sqrt(np.mean(err[members] ** 2))),
                "count": int(members.sum()),
            }
        )
    return rows


def error_by_value_band(
    original: np.ndarray,
    reconstructed: np.ndarray,
    num_bands: int = 8,
) -> list[dict]:
    """RMSE binned by the original field's value.

    Exposes feature-selective failure: e.g. high error in the lowest
    pressure band means the hurricane eye reconstructs poorly even when
    global SNR looks fine.
    """
    if num_bands < 2:
        raise ValueError(f"need at least 2 bands, got {num_bands}")
    a = np.asarray(original, dtype=np.float64).ravel()
    err = error_field(original, reconstructed).ravel()
    edges = np.linspace(a.min(), a.max() + 1e-12, num_bands + 1)
    which = np.clip(np.digitize(a, edges[1:-1]), 0, num_bands - 1)
    rows = []
    for b in range(num_bands):
        members = which == b
        if not members.any():
            continue
        rows.append(
            {
                "value_lo": float(edges[b]),
                "value_hi": float(edges[b + 1]),
                "rmse": float(np.sqrt(np.mean(err[members] ** 2))),
                "count": int(members.sum()),
            }
        )
    return rows


def worst_regions(
    grid: UniformGrid,
    original: np.ndarray,
    reconstructed: np.ndarray,
    blocks: tuple[int, int, int] = (4, 4, 2),
    top_k: int = 5,
) -> list[dict]:
    """The ``top_k`` spatial blocks with the highest RMSE.

    Each record carries the block's index ranges and RMSE — the triage list
    for "where should I look first".
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    err = error_field(grid.validate_field(original), grid.validate_field(reconstructed))
    rows = []
    for bx in range(min(blocks[0], grid.dims[0])):
        x0 = bx * grid.dims[0] // blocks[0]
        x1 = (bx + 1) * grid.dims[0] // blocks[0]
        if x1 <= x0:
            continue
        for by in range(min(blocks[1], grid.dims[1])):
            y0 = by * grid.dims[1] // blocks[1]
            y1 = (by + 1) * grid.dims[1] // blocks[1]
            if y1 <= y0:
                continue
            for bz in range(min(blocks[2], grid.dims[2])):
                z0 = bz * grid.dims[2] // blocks[2]
                z1 = (bz + 1) * grid.dims[2] // blocks[2]
                if z1 <= z0:
                    continue
                chunk = err[x0:x1, y0:y1, z0:z1]
                rows.append(
                    {
                        "x": (x0, x1),
                        "y": (y0, y1),
                        "z": (z0, z1),
                        "rmse": float(np.sqrt(np.mean(chunk**2))),
                        "count": int(chunk.size),
                    }
                )
    rows.sort(key=lambda r: -r["rmse"])
    return rows[:top_k]
