"""Reconstruction error analysis.

Diagnostics that explain *where* and *why* a reconstruction is wrong —
the questions a practitioner asks after seeing an SNR number:

* :func:`error_field` / :func:`error_summary` — signed per-voxel error and
  its distribution statistics;
* :func:`error_vs_sample_distance` — error binned by distance to the
  nearest sampled point (rule-based error grows with void depth; a good
  learned model flattens this curve);
* :func:`error_by_value_band` — error binned by the original scalar's
  value, exposing feature-selective failures (e.g. the hurricane eye);
* :func:`worst_regions` — the blocks with the highest RMSE, for triage.
"""

from repro.analysis.errors import (
    ErrorSummary,
    error_by_value_band,
    error_field,
    error_summary,
    error_vs_sample_distance,
    worst_regions,
)

__all__ = [
    "ErrorSummary",
    "error_field",
    "error_summary",
    "error_vs_sample_distance",
    "error_by_value_band",
    "worst_regions",
]
