"""Command-line entry point.

Two command families (``repro ...`` or ``python -m repro ...``):

**Experiments** — regenerate any table/figure of the paper::

    repro list
    repro fig9 --profile bench
    repro all --profile quick

**Data tools** — the paper's file workflow on VTK XML volumes::

    repro generate hurricane out.vti --dims 40 40 12
    repro sample out.vti cloud.vtp --fraction 0.01
    repro train out.vti model.npz --epochs 150 --checkpoint ckpt.npz
    repro train out.vti model.npz --epochs 150 --checkpoint ckpt.npz --resume
    repro reconstruct cloud.vtp out.vti recon.vti --method fcnn --model model.npz
    repro evaluate out.vti recon.vti
    repro render recon.vti view.pgm --mode mip

**Static analysis** — enforce the repo's numerical-correctness invariants::

    repro check src/repro
    repro check src/repro --format json --baseline .repro-checks-baseline.json

**Serving** — registry-backed reconstruction-as-a-service (``repro.serve``)::

    repro serve build registry/ --dataset combustion --timesteps 0 1 2 3
    repro serve ls registry/
    repro replay registry/ --requests 10000 --report stats.json

**Observability** — record and inspect run telemetry (``repro.obs``)::

    repro fig10 --profile quick --obs runs/          # instrumented experiment
    repro train vol.vti m.npz --obs runs/train       # instrumented tool run
    repro obs report runs/fig10                      # span tree + metrics
    repro obs report runs/fig10 --diff runs/fig10-b  # regression diff
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import PROFILES, get_config
from repro.resilience import CheckpointCorruptionError

__all__ = ["main"]

_TOOL_COMMANDS = ("generate", "sample", "train", "reconstruct", "evaluate", "render", "campaign")


def _runners() -> dict[str, tuple[str, callable]]:
    from repro.experiments import (
        exp_compression,
        exp_feature_preservation,
        exp_finetune_cases,
        exp_gradient_ablation,
        exp_layers,
        exp_loss_curves,
        exp_samplers,
        exp_sampling_quality,
        exp_schedules,
        exp_sampling_time,
        exp_timesteps,
        exp_train_mix,
        exp_training_subset,
        exp_training_time,
        exp_uncertainty,
        exp_upscaling,
    )

    return {
        "fig5": ("Case 1 vs Case 2 fine-tuning", exp_finetune_cases.run),
        "fig6": ("SNR vs hidden-layer count", exp_layers.run),
        "fig7": ("training sampling-percentage mix", exp_train_mix.run),
        "fig8": ("gradient-output ablation", exp_gradient_ablation.run),
        "fig9": ("SNR vs sampling percentage, all methods", exp_sampling_quality.run),
        "fig10": ("reconstruction time vs sampling percentage", exp_sampling_time.run),
        "fig11": ("quality across timesteps", exp_timesteps.run),
        "fig12": ("loss curves: full training vs fine-tuning", exp_loss_curves.run),
        "fig13": ("volume upscaling across domains", exp_upscaling.run),
        "fig14": ("training-set sub-sampling (also Table II)", exp_training_subset.run),
        "tab1": ("training time per dataset/resolution", exp_training_time.run),
        "tab2": ("alias of fig14", exp_training_subset.run),
        "ext-features": ("extension: isosurface/feature preservation", exp_feature_preservation.run),
        "ext-uncertainty": ("extension: deep-ensemble uncertainty", exp_uncertainty.run),
        "ext-samplers": ("extension: sampling-strategy ablation", exp_samplers.run),
        "ext-compression": ("extension: sampling vs lossy compression at equal storage", exp_compression.run),
        "ext-schedules": ("extension: learning-rate-schedule ablation", exp_schedules.run),
    }


def _tool_main(argv: list[str]) -> int:
    """Dispatcher for the file-based data tools."""
    from repro import tools

    parser = argparse.ArgumentParser(prog="repro", description="VTK-file workflow tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic dataset timestep as .vti")
    p.add_argument("dataset")
    p.add_argument("output")
    p.add_argument("--dims", type=int, nargs=3, default=None)
    p.add_argument("--timestep", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sample", help="reduce a .vti to a sampled .vtp point cloud")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--fraction", type=float, required=True)
    p.add_argument("--sampler", default="multicriteria", choices=sorted(tools.SAMPLERS))
    p.add_argument("--array", default=None)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("train", help="train an FCNN from a full-resolution .vti")
    p.add_argument("input")
    p.add_argument("model_out")
    p.add_argument("--fractions", type=float, nargs="+", default=[0.01, 0.05])
    p.add_argument("--sampler", default="multicriteria", choices=sorted(tools.SAMPLERS))
    p.add_argument("--array", default=None)
    p.add_argument("--epochs", type=int, default=150)
    p.add_argument("--hidden", type=int, nargs="+", default=[128, 64, 32, 16])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None,
                   help="write training checkpoints here (.npz)")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   help="epochs between checkpoints (default 25)")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted run from --checkpoint")
    p.add_argument("--health-policy", default="rollback",
                   choices=["raise", "skip_batch", "rollback", ""],
                   help="NaN/Inf guard policy ('' disables; default rollback)")
    p.add_argument("--obs", default=None, metavar="DIR",
                   help="record run telemetry under DIR (repro obs report DIR)")

    p = sub.add_parser("reconstruct", help="rebuild a .vti from a .vtp cloud")
    p.add_argument("input")
    p.add_argument("reference")
    p.add_argument("output")
    p.add_argument("--method", default="linear")
    p.add_argument("--model", default=None)
    p.add_argument("--array", default="scalar")
    p.add_argument("--obs", default=None, metavar="DIR",
                   help="record run telemetry under DIR (repro obs report DIR)")

    p = sub.add_parser("evaluate", help="score a reconstruction against the original")
    p.add_argument("original")
    p.add_argument("reconstruction")
    p.add_argument("--array", default=None)

    p = sub.add_parser("render", help="project a .vti to a PGM image")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--mode", default="mip", choices=["mip", "mean", "slice"])
    p.add_argument("--axis", type=int, default=2)
    p.add_argument("--array", default=None)

    p = sub.add_parser("campaign", help="run a multi-timestep in situ campaign to a directory")
    p.add_argument("output_dir")
    p.add_argument("--dataset", default="combustion")
    p.add_argument("--dims", type=int, nargs=3, default=None)
    p.add_argument("--timesteps", type=int, nargs="+", default=[0, 4, 8, 12])
    p.add_argument("--fraction", type=float, default=0.03)
    p.add_argument("--sampler", default="multicriteria", choices=sorted(tools.SAMPLERS))
    p.add_argument("--train", action="store_true",
                   help="train an FCNN in situ (fine-tuned per timestep)")
    p.add_argument("--fractions", type=float, nargs="+", default=[0.01, 0.05],
                   help="training sampling fractions (with --train)")
    p.add_argument("--epochs", type=int, default=100)
    p.add_argument("--finetune-epochs", type=int, default=10)
    p.add_argument("--batched-finetune", action="store_true",
                   help="fine-tune every timestep from the pretrained base "
                        "through the fused repro.nn.batched engine "
                        "(block-size invariant; see docs/TRAINING.md)")
    p.add_argument("--finetune-batch", type=int, default=0, metavar="K",
                   help="timesteps per fused fine-tune block with "
                        "--batched-finetune (0 = all in one block)")
    p.add_argument("--shards", default=None, metavar="AxBxC",
                   help="spatial domain decomposition for in situ training "
                        "(e.g. 2x2x1, or a shard count like 4): one model "
                        "per (timestep, shard), stitched by the reader "
                        "(requires --train; see docs/PERFORMANCE.md)")
    p.add_argument("--halo", type=int, default=None, metavar="N",
                   help="halo/ghost-zone width in grid cells around each "
                        "shard (default: sized to the kNN stencil via "
                        "repro.shard.suggest_halo; requires --shards)")
    p.add_argument("--pipeline", default="on", choices=["on", "off"],
                   help="overlap simulate/train/write across timesteps "
                        "(bit-identical output either way; default on)")
    p.add_argument("--journal", action="store_true",
                   help="keep a durable write-ahead journal under "
                        "OUTPUT_DIR/.wal/ so a killed campaign can --resume")
    p.add_argument("--resume", action="store_true",
                   help="skip timesteps the journal proves already emitted "
                        "(verified by content hash) and continue bit-identically; "
                        "implies --journal")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--obs", default=None, metavar="DIR",
                   help="record run telemetry under DIR (repro obs report DIR)")

    args = parser.parse_args(argv)
    if getattr(args, "obs", None):
        from repro.obs import RunRecorder

        recorder = RunRecorder(
            args.obs, meta={"command": args.command, "seed": getattr(args, "seed", None)}
        )
    else:
        from repro.obs import NullRecorder

        recorder = NullRecorder()
    try:
        with recorder:
            msg = _tool_dispatch(args)
    except (ValueError, FileNotFoundError, KeyError, CheckpointCorruptionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(msg)
    if recorder.run_dir is not None:
        print(f"telemetry: repro obs report {recorder.run_dir}")
    return 0


def _tool_dispatch(args) -> str:
    """Execute one parsed tool command, returning its status message."""
    from repro import tools

    if args.command == "generate":
        return tools.cmd_generate(args.dataset, args.output, dims=args.dims,
                                  timestep=args.timestep, seed=args.seed)
    if args.command == "sample":
        return tools.cmd_sample(args.input, args.output, args.fraction,
                                sampler=args.sampler, array=args.array, seed=args.seed)
    if args.command == "train":
        return tools.cmd_train(args.input, args.model_out, fractions=tuple(args.fractions),
                               sampler=args.sampler, array=args.array, epochs=args.epochs,
                               hidden=tuple(args.hidden), seed=args.seed,
                               checkpoint=args.checkpoint,
                               checkpoint_every=args.checkpoint_every,
                               resume=args.resume, health_policy=args.health_policy)
    if args.command == "reconstruct":
        return tools.cmd_reconstruct(args.input, args.reference, args.output,
                                     method=args.method, model=args.model, array=args.array)
    if args.command == "evaluate":
        return tools.cmd_evaluate(args.original, args.reconstruction, array=args.array)
    if args.command == "campaign":
        return tools.cmd_campaign(args.output_dir, dataset=args.dataset, dims=args.dims,
                                  timesteps=args.timesteps, fraction=args.fraction,
                                  sampler=args.sampler, train=args.train,
                                  fractions=tuple(args.fractions), epochs=args.epochs,
                                  finetune_epochs=args.finetune_epochs, seed=args.seed,
                                  pipeline=args.pipeline == "on",
                                  batched_finetune=args.batched_finetune,
                                  finetune_batch=args.finetune_batch,
                                  shards=args.shards, halo=args.halo,
                                  journal=args.journal, resume=args.resume)
    return tools.cmd_render(args.input, args.output, mode=args.mode,
                            axis=args.axis, array=args.array)


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "check":
        from repro.checks.cli import main as checks_main

        return checks_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "replay":
        from repro.serve.cli import replay_main

        return replay_main(argv[1:])
    if argv and argv[0] in _TOOL_COMMANDS:
        return _tool_main(argv)

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Filling the Void' (SC 2024).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig5..fig14, tab1, tab2), 'all', or 'list'",
    )
    parser.add_argument(
        "--profile",
        default="bench",
        choices=sorted(PROFILES),
        help="scale profile (default: bench)",
    )
    parser.add_argument("--dataset", default=None, help="override the config's dataset")
    parser.add_argument("--epochs", type=int, default=None, help="override epoch budget")
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument(
        "--obs",
        default=None,
        metavar="DIR",
        help="record run telemetry under DIR/<experiment> (JSONL events + "
        "run.json; inspect with 'repro obs report')",
    )
    args = parser.parse_args(argv)

    runners = _runners()
    if args.experiment == "list":
        for key, (desc, _) in runners.items():
            print(f"{key:7s} {desc}")
        return 0

    overrides = {}
    if args.dataset:
        overrides["dataset"] = args.dataset
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.obs is not None:
        overrides["obs"] = args.obs
    config = get_config(args.profile, **overrides)

    if args.experiment == "all":
        names = [k for k in runners if k != "tab2"]
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'repro list'", file=sys.stderr)
        return 2

    from repro.experiments.runner import build_recorder

    for name in names:
        _, runner = runners[name]
        with build_recorder(config, name) as recorder:
            result = runner(config)
        print(result.format())
        if recorder.run_dir is not None:
            print(f"   telemetry: repro obs report {recorder.run_dir}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
