"""Importance-driven sampling (Biswas et al. [4], [5]).

The multi-criteria sampler assigns each grid point an importance that blends

* **value rarity** — per-point weight inversely proportional to the
  occupancy of its scalar-histogram bin, so uncommon values (features such
  as a hurricane eye or a flame sheet) are preferentially kept;
* **gradient magnitude** — points in high-gradient regions carry the
  geometric structure reconstruction must preserve;
* a small **uniform floor** so smooth regions retain background coverage.

Importances are converted to per-point acceptance probabilities whose sum
equals the storage budget via iterative water-filling (probabilities are
capped at 1 and the excess mass is redistributed).  Selection is then either
*exact* (weighted Gumbel top-k draw of exactly the budget, the default — the
experiments want precise sampling fractions) or *probabilistic* (independent
Bernoulli per point, the in situ streaming formulation).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TimestepField
from repro.grid import gradient_magnitude
from repro.sampling.base import Sampler

__all__ = [
    "acceptance_probabilities",
    "HistogramImportanceSampler",
    "GradientImportanceSampler",
    "MultiCriteriaSampler",
]


def acceptance_probabilities(importance: np.ndarray, budget: int, max_iter: int = 100) -> np.ndarray:
    """Scale non-negative importances to probabilities summing to ``budget``.

    Solves ``p_i = min(1, c * I_i)`` with ``sum(p) == budget`` by iteratively
    capping saturated points and rescaling the rest (water-filling).  Points
    with zero importance get zero probability unless the budget cannot be
    met otherwise, in which case the leftover mass is spread uniformly.
    """
    imp = np.asarray(importance, dtype=np.float64)
    if imp.ndim != 1:
        raise ValueError("importance must be 1D")
    if np.any(imp < 0) or not np.all(np.isfinite(imp)):
        raise ValueError("importance must be finite and non-negative")
    n = imp.size
    if not (1 <= budget <= n):
        raise ValueError(f"budget must be in [1, {n}], got {budget}")

    # The water-filling solution is scale-invariant in the importances;
    # normalizing up front keeps subnormal inputs (which would overflow the
    # rescaling division) well-conditioned.
    peak = imp.max()
    if peak > 0:
        imp = imp / peak

    p = np.zeros(n, dtype=np.float64)
    saturated = np.zeros(n, dtype=bool)
    remaining = float(budget)
    positive = imp > 0
    for _ in range(max_iter):
        # Zero-importance points never receive mass here; any unmet budget
        # is spread over them in the shortfall pass below.
        free = ~saturated & positive
        if not free.any():
            break
        # Renormalize the free importances by their own peak each pass:
        # proportionality is unchanged and the rescaling division can no
        # longer overflow, however subnormal the raw importances are.
        sub = imp[free]
        sub = sub / sub.max()
        total = sub.sum()  # >= 1 because the peak maps to exactly 1
        p[free] = sub * (remaining / total)
        over = free & (p > 1.0)
        if not over.any():
            break
        p[over] = 1.0
        saturated |= over
        remaining = budget - float(saturated.sum())
        if remaining <= 0:
            p[~saturated] = 0.0
            break

    # If importance mass was insufficient (e.g. mostly zeros), spread the
    # shortfall uniformly over unsaturated points.
    shortfall = budget - p.sum()
    if shortfall > 1e-9:
        free = p < 1.0
        headroom = (1.0 - p[free]).sum()
        if headroom > 0:
            p[free] += (1.0 - p[free]) * min(1.0, shortfall / headroom)
    return np.clip(p, 0.0, 1.0)


def _select_from_probabilities(
    p: np.ndarray, budget: int, rng: np.random.Generator, exact: bool
) -> np.ndarray:
    """Draw indices according to acceptance probabilities ``p``."""
    if exact:
        # Weighted without-replacement draw of exactly `budget` points via
        # Gumbel top-k on log-probabilities; zero-probability points are
        # only used if fewer than `budget` have positive probability.
        eps = 1e-300
        gumbel = rng.gumbel(size=p.size)
        keys = np.log(p + eps) + gumbel
        positive = np.count_nonzero(p > 0)
        if positive < budget:
            # Not enough positive-probability points: take them all and fill
            # the remainder uniformly at random.
            keys = np.where(p > 0, np.inf, gumbel)
        return np.argpartition(-keys, budget - 1)[:budget]
    accept = rng.random(p.size) < p
    idx = np.flatnonzero(accept)
    if idx.size == 0:
        idx = np.array([int(np.argmax(p))], dtype=np.int64)
    return idx


def _rarity_importance(values: np.ndarray, bins: int) -> np.ndarray:
    """Per-point weight ~ 1 / occupancy of the point's histogram bin."""
    counts, edges = np.histogram(values, bins=bins)
    which = np.clip(np.digitize(values, edges[1:-1]), 0, bins - 1)
    occ = counts[which].astype(np.float64)
    occ[occ == 0] = 1.0
    imp = 1.0 / occ
    return imp / imp.max()


def _normalized(x: np.ndarray) -> np.ndarray:
    m = x.max()
    return x / m if m > 0 else np.zeros_like(x)


class _ImportanceSampler(Sampler):
    """Shared budget/selection plumbing for importance-based samplers."""

    def __init__(self, seed: int = 0, exact: bool = True) -> None:
        super().__init__(seed=seed)
        self.exact = bool(exact)

    def importance(self, field: TimestepField) -> np.ndarray:
        raise NotImplementedError

    def select(self, field: TimestepField, fraction: float, rng: np.random.Generator) -> np.ndarray:
        budget = int(round(fraction * field.grid.num_points))
        imp = self.importance(field)
        p = acceptance_probabilities(imp, budget)
        return _select_from_probabilities(p, budget, rng, self.exact)


class HistogramImportanceSampler(_ImportanceSampler):
    """Value-rarity-only importance sampling (single criterion of [5])."""

    name = "histogram"

    def __init__(self, bins: int = 32, seed: int = 0, exact: bool = True) -> None:
        super().__init__(seed=seed, exact=exact)
        if bins < 2:
            raise ValueError(f"need at least 2 histogram bins, got {bins}")
        self.bins = int(bins)

    def importance(self, field: TimestepField) -> np.ndarray:
        return _rarity_importance(field.flat, self.bins)


class GradientImportanceSampler(_ImportanceSampler):
    """Gradient-magnitude-only importance sampling (single criterion of [5])."""

    name = "gradient"

    def importance(self, field: TimestepField) -> np.ndarray:
        return _normalized(gradient_magnitude(field.grid, field.values))


class MultiCriteriaSampler(_ImportanceSampler):
    """The paper's sampler: Biswas et al. [5] multi-criteria importance.

    Parameters
    ----------
    histogram_weight, gradient_weight, uniform_weight:
        Blend weights for the rarity, gradient and uniform-floor criteria
        (normalized internally).
    bins:
        Scalar-histogram resolution for the rarity criterion.
    exact:
        Draw exactly the budget (default) or Bernoulli per point.
    """

    name = "multicriteria"

    def __init__(
        self,
        histogram_weight: float = 1.0,
        gradient_weight: float = 1.0,
        uniform_weight: float = 0.1,
        bins: int = 32,
        seed: int = 0,
        exact: bool = True,
    ) -> None:
        super().__init__(seed=seed, exact=exact)
        weights = np.array([histogram_weight, gradient_weight, uniform_weight], dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("criterion weights must be non-negative with positive sum")
        self._weights = weights / weights.sum()
        if bins < 2:
            raise ValueError(f"need at least 2 histogram bins, got {bins}")
        self.bins = int(bins)

    def importance(self, field: TimestepField) -> np.ndarray:
        w_hist, w_grad, w_uni = self._weights
        imp = np.zeros(field.grid.num_points, dtype=np.float64)
        if w_hist > 0:
            imp += w_hist * _rarity_importance(field.flat, self.bins)
        if w_grad > 0:
            imp += w_grad * _normalized(gradient_magnitude(field.grid, field.values))
        if w_uni > 0:
            imp += w_uni
        return imp
