"""Blue-noise (Poisson-disk) sampling.

Rapp et al. [23] (cited in Sec II) sample scattered data while preserving
blue-noise properties — samples spread evenly with a minimum mutual
distance, avoiding both clumps and holes.  This implements the classic
dart-throwing formulation on the grid with an importance-aware variant:
candidate order follows the same multi-criteria importance as the paper's
sampler, so features are visited first while spacing stays even.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.datasets.base import TimestepField
from repro.sampling.base import Sampler
from repro.sampling.importance import MultiCriteriaSampler

__all__ = ["PoissonDiskSampler"]


class PoissonDiskSampler(Sampler):
    """Dart-throwing Poisson-disk selection under a storage budget.

    Parameters
    ----------
    importance_ordered:
        When True (default), candidates are visited in decreasing
        multi-criteria importance so high-information points win the
        spacing contest; when False, visiting order is uniform random
        (pure blue noise).
    relax:
        Radius relaxation factor per retry round when the budget cannot be
        met at the ideal spacing.
    """

    name = "poisson"

    def __init__(self, importance_ordered: bool = True, relax: float = 0.8, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if not (0.0 < relax < 1.0):
            raise ValueError(f"relax must be in (0, 1), got {relax}")
        self.importance_ordered = bool(importance_ordered)
        self.relax = float(relax)

    def _candidate_order(self, field: TimestepField, rng: np.random.Generator) -> np.ndarray:
        n = field.grid.num_points
        if not self.importance_ordered:
            return rng.permutation(n)
        imp = MultiCriteriaSampler(seed=self.seed).importance(field)
        # Random tie-breaking keeps the order a proper draw, not a sort.
        noise = rng.random(n) * 1e-9 * (imp.max() + 1.0)
        return np.argsort(-(imp + noise))

    def select(self, field: TimestepField, fraction: float, rng: np.random.Generator) -> np.ndarray:
        grid = field.grid
        n = grid.num_points
        budget = int(round(fraction * n))
        points = grid.points()

        # Ideal Poisson-disk radius: budget spheres tiling the domain volume.
        spans = [(d - 1) * s for d, s in zip(grid.dims, grid.spacing)]
        volume = float(np.prod([max(s, min(grid.spacing)) for s in spans]))
        radius = (volume / max(budget, 1)) ** (1.0 / 3.0)

        order = self._candidate_order(field, rng)
        chosen: list[int] = []
        blocked = np.zeros(n, dtype=bool)

        while len(chosen) < budget and radius > 1e-9:
            tree = cKDTree(points)
            for idx in order:
                if len(chosen) >= budget:
                    break
                if blocked[idx]:
                    continue
                chosen.append(int(idx))
                # Block this dart's exclusion zone.
                for nb in tree.query_ball_point(points[idx], radius):
                    blocked[nb] = True
            if len(chosen) < budget:
                # Too tight: relax the radius and re-run over survivors.
                radius *= self.relax
                blocked[:] = False
                blocked[np.asarray(chosen, dtype=np.int64)] = True
                # Re-block zones of already-chosen darts at the new radius.
                for idx in chosen:
                    for nb in tree.query_ball_point(points[idx], radius):
                        blocked[nb] = True
        if len(chosen) < budget:
            # Degenerate fallback: top up uniformly.
            mask = np.ones(n, dtype=bool)
            mask[np.asarray(chosen, dtype=np.int64)] = False
            extra = rng.choice(np.flatnonzero(mask), size=budget - len(chosen), replace=False)
            chosen.extend(int(e) for e in extra)
        return np.asarray(chosen[:budget], dtype=np.int64)
