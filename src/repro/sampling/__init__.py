"""Data-driven in situ sampling (the paper's data-reduction substrate).

The paper samples every dataset with the multi-criteria importance sampler
of Biswas et al. [5]: grid points are kept with probability proportional to
a blend of *value rarity* (histogram-based — rare scalar values mark
features) and *gradient magnitude* (high-gradient regions carry structure),
under a hard storage budget.  Baseline samplers (uniform random, spatially
stratified, single-criterion) are provided for comparison, and all samplers
share the :class:`~repro.sampling.base.Sampler` interface so the
reconstruction pipeline is sampler-agnostic (Sec III-D: "our approach is
sampling method agnostic").
"""

from repro.sampling.base import SampledField, Sampler
from repro.sampling.random import RandomSampler
from repro.sampling.stratified import StratifiedSampler
from repro.sampling.importance import (
    GradientImportanceSampler,
    HistogramImportanceSampler,
    MultiCriteriaSampler,
    acceptance_probabilities,
)
from repro.sampling.bluenoise import PoissonDiskSampler

__all__ = [
    "Sampler",
    "SampledField",
    "RandomSampler",
    "StratifiedSampler",
    "HistogramImportanceSampler",
    "GradientImportanceSampler",
    "MultiCriteriaSampler",
    "PoissonDiskSampler",
    "acceptance_probabilities",
]
