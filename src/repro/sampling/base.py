"""Sampler interface and the sampled-field container.

A :class:`SampledField` is the unstructured point cloud the paper calls the
"sampled dataset": surviving grid points' flat indices, physical positions
and scalar values, plus the source grid so void locations (the rejected
points whose values must be reconstructed) can be enumerated.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets.base import TimestepField
from repro.grid import UniformGrid

__all__ = ["SampledField", "Sampler"]


@dataclass(frozen=True)
class SampledField:
    """An unstructured sample of a grid field (paper's ``.vtp`` payload)."""

    grid: UniformGrid
    indices: np.ndarray  # (M,) flat indices of sampled grid points, sorted
    values: np.ndarray   # (M,) scalar values at those points
    fraction: float      # requested sampling fraction (e.g. 0.01 for 1%)
    timestep: int = 0

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1 or indices.shape != values.shape:
            raise ValueError("indices and values must be matching 1D arrays")
        if indices.size == 0:
            raise ValueError("a SampledField needs at least one sample")
        if indices.size != np.unique(indices).size:
            raise ValueError("sampled indices must be unique")
        if indices.min() < 0 or indices.max() >= self.grid.num_points:
            raise ValueError("sampled indices out of grid range")
        order = np.argsort(indices)
        object.__setattr__(self, "indices", indices[order])
        object.__setattr__(self, "values", values[order])

    # ------------------------------------------------------------ geometry
    @property
    def num_samples(self) -> int:
        return int(self.indices.size)

    @property
    def achieved_fraction(self) -> float:
        """Fraction of grid points actually kept."""
        return self.num_samples / self.grid.num_points

    @property
    def points(self) -> np.ndarray:
        """Physical positions ``(M, 3)`` of the sampled points."""
        return self.grid.index_to_position(self.grid.flat_to_multi(self.indices))

    def void_indices(self) -> np.ndarray:
        """Flat indices of the rejected grid points (the "void locations").

        Cached on first use — the field is frozen, so the void set can
        never change, and per-timestep reconstruction asks for it on every
        call.  Treat the returned array as read-only.
        """
        cached = getattr(self, "_void_indices", None)
        if cached is None:
            mask = np.ones(self.grid.num_points, dtype=bool)
            mask[self.indices] = False
            cached = np.flatnonzero(mask)
            object.__setattr__(self, "_void_indices", cached)
        return cached

    def void_points(self) -> np.ndarray:
        """Physical positions ``(K, 3)`` of the void locations (cached, read-only).

        Returning the *same* array object every call is load-bearing for
        the fast path: :class:`repro.core.FeatureExtractor`'s geometry
        cache is keyed on query identity, so repeated reconstructions of
        one sample skip the kd-tree neighbor query entirely.
        """
        cached = getattr(self, "_void_points", None)
        if cached is None:
            cached = self.grid.index_to_position(
                self.grid.flat_to_multi(self.void_indices())
            )
            object.__setattr__(self, "_void_points", cached)
        return cached

    # ----------------------------------------------------------------- I/O
    def to_vtp(self, path: str | Path, binary: bool = True) -> None:
        """Persist as a VTK PolyData point cloud (the paper's on-disk form)."""
        from repro.io import write_vtp

        write_vtp(
            path,
            self.points,
            {"scalar": self.values, "flat_index": self.indices},
            binary=binary,
        )

    @classmethod
    def from_vtp(
        cls,
        path: str | Path,
        grid: UniformGrid,
        fraction: float | None = None,
        timestep: int = 0,
    ) -> "SampledField":
        """Load a sample written by :meth:`to_vtp` back onto its grid."""
        from repro.io import read_vtp

        points, data = read_vtp(path)
        if "flat_index" in data:
            indices = np.asarray(data["flat_index"], dtype=np.int64)
        else:
            indices = grid.multi_to_flat(grid.position_to_index(points))
        values = np.asarray(data["scalar"], dtype=np.float64)
        frac = fraction if fraction is not None else indices.size / grid.num_points
        return cls(grid=grid, indices=indices, values=values, fraction=frac, timestep=timestep)


class Sampler(abc.ABC):
    """Strategy that reduces a grid field to a :class:`SampledField`."""

    name: str = "sampler"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    @abc.abstractmethod
    def select(self, field: TimestepField, fraction: float, rng: np.random.Generator) -> np.ndarray:
        """Return the flat indices of the grid points to keep."""

    def sample(self, field: TimestepField, fraction: float, seed: int | None = None) -> SampledField:
        """Sample ``fraction`` of ``field``'s grid points.

        Parameters
        ----------
        field:
            Full-resolution field at one timestep.
        fraction:
            Target fraction of points to keep, in ``(0, 1]``.
        seed:
            Override the sampler's seed for this draw (the draw is otherwise
            deterministic per (sampler seed, timestep)).
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"sampling fraction must be in (0, 1], got {fraction}")
        budget = int(round(fraction * field.grid.num_points))
        if budget < 1:
            raise ValueError(
                f"fraction {fraction} keeps zero of {field.grid.num_points} points"
            )
        base_seed = self.seed if seed is None else int(seed)
        rng = np.random.default_rng((base_seed, field.timestep, budget))
        indices = np.asarray(self.select(field, fraction, rng), dtype=np.int64)
        return SampledField(
            grid=field.grid,
            indices=indices,
            values=field.flat[indices],
            fraction=float(fraction),
            timestep=field.timestep,
        )
