"""Spatially stratified random sampling (Woodring et al. [1] style).

The grid is partitioned into equal blocks and each block contributes a
proportional share of the budget, guaranteeing spatial coverage — the
property plain random sampling loses at aggressive rates.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TimestepField
from repro.sampling.base import Sampler

__all__ = ["StratifiedSampler"]


class StratifiedSampler(Sampler):
    """Proportional random sampling within regular spatial blocks."""

    name = "stratified"

    def __init__(self, blocks: tuple[int, int, int] = (4, 4, 2), seed: int = 0) -> None:
        super().__init__(seed=seed)
        if any(b < 1 for b in blocks):
            raise ValueError(f"block counts must be >= 1, got {blocks}")
        self.blocks = tuple(int(b) for b in blocks)

    def select(self, field: TimestepField, fraction: float, rng: np.random.Generator) -> np.ndarray:
        grid = field.grid
        n = grid.num_points
        budget = int(round(fraction * n))

        # Label every grid point with its block id.
        multi = grid.flat_to_multi(np.arange(n))
        block_ids = np.zeros(n, dtype=np.int64)
        stride = 1
        for axis in range(3):
            nb = min(self.blocks[axis], grid.dims[axis])
            # Evenly split the axis into nb chunks.
            edges = (multi[:, axis] * nb) // grid.dims[axis]
            block_ids += edges * stride
            stride *= nb

        chosen: list[np.ndarray] = []
        unique_blocks, counts = np.unique(block_ids, return_counts=True)
        # Largest-remainder apportionment of the budget across blocks.
        quota = budget * counts / n
        take = np.floor(quota).astype(np.int64)
        remainder = budget - int(take.sum())
        if remainder > 0:
            order = np.argsort(-(quota - take))
            take[order[:remainder]] += 1
        take = np.minimum(take, counts)

        for block, k in zip(unique_blocks, take):
            if k == 0:
                continue
            members = np.flatnonzero(block_ids == block)
            chosen.append(rng.choice(members, size=int(k), replace=False))
        picked = np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)

        # Top up if per-block caps left the budget short.
        if picked.size < budget:
            mask = np.ones(n, dtype=bool)
            mask[picked] = False
            extra = rng.choice(np.flatnonzero(mask), size=budget - picked.size, replace=False)
            picked = np.concatenate([picked, extra])
        return picked
