"""Uniform random sampling — the simplest baseline."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TimestepField
from repro.sampling.base import Sampler

__all__ = ["RandomSampler"]


class RandomSampler(Sampler):
    """Keep a uniform random subset of grid points (without replacement)."""

    name = "random"

    def select(self, field: TimestepField, fraction: float, rng: np.random.Generator) -> np.ndarray:
        n = field.grid.num_points
        budget = int(round(fraction * n))
        return rng.choice(n, size=budget, replace=False)
