"""Worker supervision, stage deadlines, quarantine, and graceful interruption.

The campaign stack already survives *task-level* failures (PR 2's
``ParallelExecutor`` retries and broken-pool recovery).  This module adds
the *campaign-level* layer above it:

* :class:`WorkerSupervisor` — a monitor thread watching per-stage
  heartbeats against wall-clock deadlines (distinct from per-task
  timeouts: a stage deadline covers the whole stage, including queueing
  and retries), firing an ``on_stall`` callback (e.g.
  ``ParallelExecutor.recycle``) when a stage exceeds its budget;
* quarantine of "poison" timesteps: a timestep whose stage keeps failing
  after ``max_retries`` attempts is recorded and the campaign continues
  with a degraded output instead of aborting — hours of completed
  fine-tuning are never thrown away because one timestep is cursed;
* :class:`GracefulInterrupt` — SIGTERM/SIGINT capture that converts the
  signal into a cooperative stop flag, always restoring the previous
  handlers on exit (the RES001 checks rule enforces the same discipline
  project-wide);
* :class:`CampaignInterrupted` — raised by the campaign scheduler after a
  graceful stop, carrying what completed and where to resume.

This module imports only :mod:`repro.obs` (which itself imports nothing
from the rest of ``repro``).
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import counter, record_event

__all__ = [
    "CampaignInterrupted",
    "GracefulInterrupt",
    "QuarantineRecord",
    "SupervisionPolicy",
    "WorkerSupervisor",
]


class CampaignInterrupted(RuntimeError):
    """A campaign stopped cooperatively (signal) before finishing.

    The journal (when enabled) already holds every completed timestep, so
    the same campaign re-run with ``resume`` continues from
    ``next_timestep``.
    """

    def __init__(
        self,
        message: str,
        *,
        completed: tuple[int, ...] = (),
        next_timestep: int | None = None,
    ) -> None:
        super().__init__(message)
        self.completed = tuple(completed)
        self.next_timestep = next_timestep


class GracefulInterrupt:
    """Convert SIGTERM/SIGINT into a cooperative stop flag.

    Usage::

        with GracefulInterrupt() as interrupt:
            for step in work:
                if interrupt.triggered:
                    break
                ...

    The previous handlers are captured on entry and restored on exit —
    nesting and library users keep their own signal behavior.  Installing
    handlers is only possible from the main thread; elsewhere the context
    degrades to an inert flag (``triggered`` stays ``False`` unless
    :meth:`trigger` is called explicitly, which tests use).
    """

    def __init__(
        self,
        signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
        on_signal: Callable[[int], None] | None = None,
    ) -> None:
        self.signals = tuple(signals)
        self.on_signal = on_signal
        self._previous: dict[int, Any] = {}
        self._triggered: int | None = None
        self.installed = False

    @property
    def triggered(self) -> bool:
        return self._triggered is not None

    @property
    def signum(self) -> int | None:
        """The signal number that triggered the stop, if any."""
        return self._triggered

    def trigger(self, signum: int = signal.SIGTERM) -> None:
        """Set the stop flag directly (what the installed handler does)."""
        first = self._triggered is None
        self._triggered = int(signum)
        if first:
            counter("supervise.interrupts").inc()
            record_event("supervise.interrupt", signum=int(signum))
        if self.on_signal is not None:
            self.on_signal(int(signum))

    def _handle(self, signum, frame) -> None:
        self.trigger(signum)

    def __enter__(self) -> "GracefulInterrupt":
        try:
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._handle)
            self.installed = True
        except ValueError:
            # Not the main thread: handlers cannot be installed.  Restore
            # whatever was swapped before the failure and stay inert.
            self._restore()
        return self

    def _restore(self) -> None:
        while self._previous:
            sig, previous = self._previous.popitem()
            signal.signal(sig, previous)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.installed or self._previous:
            self._restore()
        self.installed = False
        return False


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for :class:`WorkerSupervisor`.

    ``stage_deadline`` is wall-clock seconds a single stage instance
    (one timestep through one stage) may run before it is reported as
    stalled — deliberately distinct from ``ParallelExecutor.timeout``,
    which bounds one *task attempt*; a stage with retries can be within
    every per-task timeout yet still blow its overall budget.
    """

    stage_deadline: float | None = None   # None disables stall detection
    poll_interval: float = 0.05           # monitor thread wake-up period
    max_retries: int = 1                  # extra attempts before quarantine
    quarantine: bool = True               # degrade poison timesteps vs raise
    max_respawns: int | None = 2          # pool-recycle budget (executor knob)

    def __post_init__(self) -> None:
        if self.stage_deadline is not None and self.stage_deadline <= 0:
            raise ValueError(f"stage_deadline must be positive, got {self.stage_deadline}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True)
class QuarantineRecord:
    """One poison timestep the campaign completed in degraded form."""

    timestep: int
    stage: str
    attempts: int
    error: str


class WorkerSupervisor:
    """Monitor campaign stages: heartbeats, deadlines, retries, quarantine.

    The supervisor does not run work itself — stages wrap their execution
    in :meth:`stage` (heartbeat bookkeeping) or :meth:`attempt`
    (bookkeeping plus retry/quarantine accounting).  A monitor thread
    compares active stages against ``policy.stage_deadline`` and fires
    ``on_stall(stage, timestep, elapsed)`` once per stalled stage
    instance — the campaign wires this to pool recycling so a hung worker
    is replaced instead of wedging the run.
    """

    def __init__(
        self,
        policy: SupervisionPolicy | None = None,
        *,
        on_stall: Callable[[str, int, float], None] | None = None,
        name: str = "campaign",
    ) -> None:
        self.policy = policy or SupervisionPolicy()
        self.on_stall = on_stall
        self.name = name
        self.quarantined: list[QuarantineRecord] = []
        self.stalls: list[tuple[str, int, float]] = []
        self._active: dict[tuple[str, int], float] = {}
        self._stalled: set[tuple[str, int]] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerSupervisor":
        if self.policy.stage_deadline is not None and self._monitor is None:
            self._stop.clear()
            self._monitor = threading.Thread(
                target=self._watch, name=f"{self.name}-supervisor", daemon=True
            )
            self._monitor.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join()
            self._monitor = None

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------ heartbeats
    def stage(self, stage: str, timestep: int) -> "_StageContext":
        """Context manager marking ``(stage, timestep)`` as actively running."""
        return _StageContext(self, stage, int(timestep))

    def _begin(self, key: tuple[str, int]) -> None:
        with self._lock:
            self._active[key] = time.monotonic()

    def _end(self, key: tuple[str, int]) -> None:
        with self._lock:
            self._active.pop(key, None)
            self._stalled.discard(key)

    def _watch(self) -> None:
        deadline = self.policy.stage_deadline
        while not self._stop.wait(self.policy.poll_interval):
            now = time.monotonic()
            with self._lock:
                stalled = [
                    (key, now - started)
                    for key, started in self._active.items()
                    if now - started > deadline and key not in self._stalled
                ]
                self._stalled.update(key for key, _ in stalled)
                self.stalls.extend(
                    (key[0], key[1], elapsed) for key, elapsed in stalled
                )
            for (stage, timestep), elapsed in stalled:
                counter("supervise.stalls").inc()
                record_event(
                    "supervise.stall",
                    stage=stage,
                    timestep=timestep,
                    elapsed=round(elapsed, 3),
                    deadline=deadline,
                )
                if self.on_stall is not None:
                    try:
                        self.on_stall(stage, timestep, elapsed)
                    except Exception as exc:  # monitor must never die
                        record_event(
                            "supervise.on_stall_error",
                            stage=stage,
                            timestep=timestep,
                            error=f"{type(exc).__name__}: {exc}",
                        )

    # ------------------------------------------------------ retry/quarantine
    def attempt(
        self, fn: Callable[[], Any], *, stage: str, timestep: int
    ) -> tuple[bool, Any, int]:
        """Run ``fn`` under heartbeat with up to ``max_retries`` extra tries.

        Returns ``(ok, result_or_exception, attempts)``.  A final failure
        is *not* raised here — the caller decides between quarantine
        (``policy.quarantine``) and propagation.
        """
        attempts = 0
        last: BaseException | None = None
        with self.stage(stage, timestep):
            for _ in range(self.policy.max_retries + 1):
                attempts += 1
                try:
                    return True, fn(), attempts
                except Exception as exc:
                    last = exc
                    counter("supervise.retries").inc()
        return False, last, attempts

    def quarantine(
        self, timestep: int, stage: str, error: BaseException | str, attempts: int
    ) -> QuarantineRecord:
        """Record a poison timestep; the campaign continues degraded."""
        message = error if isinstance(error, str) else f"{type(error).__name__}: {error}"
        rec = QuarantineRecord(int(timestep), stage, int(attempts), message)
        self.quarantined.append(rec)
        counter("supervise.quarantined").inc()
        record_event(
            "supervise.quarantine",
            timestep=int(timestep),
            stage=stage,
            attempts=int(attempts),
            error=message,
        )
        return rec


class _StageContext:
    def __init__(self, supervisor: WorkerSupervisor, stage: str, timestep: int) -> None:
        self._supervisor = supervisor
        self._key = (stage, timestep)

    def __enter__(self) -> "_StageContext":
        self._supervisor._begin(self._key)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._supervisor._end(self._key)
        return False
