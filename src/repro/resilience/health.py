"""Numerical health guard for training loops.

Long FCNN runs (the paper's 500-epoch pretraining and Case-2 fine-tuning
sweeps) can be destroyed by a single non-finite loss or gradient: Adam's
moments absorb the NaN and every parameter is poisoned within a step or
two.  :class:`HealthGuard` gives :meth:`repro.nn.Trainer.fit` a detection
point after each batch (loss, gradients) and each epoch (parameters), with
three recovery policies:

* ``raise``      — abort immediately with :class:`NumericalHealthError`;
* ``skip_batch`` — drop the poisoned update and continue the epoch;
* ``rollback``   — restore the last good training state, halve the
  learning rate, and retry, up to ``max_retries`` times.

Every intervention is recorded as a :class:`HealthEvent` so a run's
recovery story is auditable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HealthGuard", "HealthEvent", "NumericalHealthError", "POLICIES"]

POLICIES = ("raise", "skip_batch", "rollback")


class NumericalHealthError(RuntimeError):
    """Training produced non-finite values and the policy could not recover."""


@dataclass(frozen=True)
class HealthEvent:
    """One detected problem and the action taken for it."""

    epoch: int
    batch: int          # -1 for per-epoch (parameter) checks
    kind: str           # "loss" | "gradient" | "parameter"
    detail: str
    action: str         # "raise" | "skip_batch" | "rollback"


class HealthGuard:
    """Detection + policy for NaN/Inf during training.

    Parameters
    ----------
    policy:
        One of :data:`POLICIES`.
    max_retries:
        Rollback budget; exceeded rollbacks escalate to
        :class:`NumericalHealthError`.
    lr_factor:
        Learning-rate multiplier applied on every rollback (paper-style
        halving by default).
    """

    def __init__(
        self,
        policy: str = "raise",
        max_retries: int = 3,
        lr_factor: float = 0.5,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not (0.0 < lr_factor <= 1.0):
            raise ValueError(f"lr_factor must be in (0, 1], got {lr_factor}")
        self.policy = policy
        self.max_retries = int(max_retries)
        self.lr_factor = float(lr_factor)
        self.rollbacks_used = 0
        self.events: list[HealthEvent] = []

    # ------------------------------------------------------------ detection
    @staticmethod
    def loss_problem(value: float) -> str | None:
        """Describe a non-finite batch loss, or ``None`` when healthy."""
        if np.isfinite(value):
            return None
        return f"non-finite loss {value!r}"

    @staticmethod
    def gradient_problem(parameters) -> str | None:
        """Name the first parameter with a non-finite gradient, if any."""
        for p in parameters:
            if not np.all(np.isfinite(p.grad)):
                bad = int(np.count_nonzero(~np.isfinite(p.grad)))
                return f"non-finite gradient in {p.name} ({bad}/{p.size} entries)"
        return None

    @staticmethod
    def parameter_problem(parameters) -> str | None:
        """Name the first parameter holding non-finite values, if any."""
        for p in parameters:
            if not np.all(np.isfinite(p.value)):
                bad = int(np.count_nonzero(~np.isfinite(p.value)))
                return f"non-finite values in {p.name} ({bad}/{p.size} entries)"
        return None

    # --------------------------------------------------------------- policy
    def record(self, epoch: int, batch: int, kind: str, detail: str, action: str) -> None:
        self.events.append(HealthEvent(epoch, batch, kind, detail, action))

    def retries_left(self) -> int:
        return self.max_retries - self.rollbacks_used
