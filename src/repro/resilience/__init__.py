"""Fault tolerance for training, checkpointing, parallel execution and reconstruction.

The paper's headline results rest on long training runs and batch
reconstruction sweeps; at production scale those workloads must survive
killed processes, truncated checkpoints and numerical blow-ups.  This
package provides the recovery building blocks:

* :mod:`repro.resilience.checkpoint` — atomic, checksummed ``.npz``
  checkpoints and full training-state capture/restore (model, optimizer,
  RNG, loss history) for bit-exact resume;
* :mod:`repro.resilience.health`     — NaN/Inf detection on loss,
  gradients and parameters with ``raise`` / ``skip_batch`` / ``rollback``
  policies;
* :mod:`repro.resilience.report`     — structured degradation metadata for
  reconstructions that fell back to a secondary method;
* :mod:`repro.resilience.faults`     — deterministic fault injectors
  (worker crashes, checkpoint corruption, forced-NaN gradients, slow
  tasks, unavailable shared memory) used by the test suite to prove every
  recovery path recovers;
* :mod:`repro.resilience.journal`    — durable, checksummed write-ahead
  journal + resume plans for crash-safe campaigns (``repro campaign
  --resume``);
* :mod:`repro.resilience.supervise`  — worker supervision (heartbeats,
  stage deadlines, poison-timestep quarantine) and graceful
  SIGTERM/SIGINT interruption;
* :mod:`repro.resilience.chaos`      — the chaos harness: deterministic
  fault schedules driving whole campaigns (imported explicitly as
  ``repro.resilience.chaos``; it reaches into the campaign stack, so the
  package root does not pull it in).

Nothing here imports from ``repro`` beyond :mod:`repro.obs` (which itself
imports nothing else), so any layer may depend on this package.
"""

from repro.resilience.checkpoint import (
    CheckpointConfig,
    CheckpointCorruptionError,
    TrainingCheckpoint,
    atomic_write_npz,
    load_training_checkpoint,
    normalize_npz_path,
    read_verified_npz,
    save_training_checkpoint,
)
from repro.resilience.health import HealthEvent, HealthGuard, NumericalHealthError
from repro.resilience.journal import (
    CampaignJournal,
    JournalCorruptionError,
    JournalEntry,
    ResumePlan,
)
from repro.resilience.report import DegradedRegion, ReconstructionReport
from repro.resilience.supervise import (
    CampaignInterrupted,
    GracefulInterrupt,
    QuarantineRecord,
    SupervisionPolicy,
    WorkerSupervisor,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointCorruptionError",
    "TrainingCheckpoint",
    "atomic_write_npz",
    "read_verified_npz",
    "normalize_npz_path",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "HealthGuard",
    "HealthEvent",
    "NumericalHealthError",
    "DegradedRegion",
    "ReconstructionReport",
    "CampaignJournal",
    "JournalCorruptionError",
    "JournalEntry",
    "ResumePlan",
    "CampaignInterrupted",
    "GracefulInterrupt",
    "QuarantineRecord",
    "SupervisionPolicy",
    "WorkerSupervisor",
]
