"""Atomic, checksummed ``.npz`` checkpoints and full training-state capture.

Two layers live here:

* **Archive primitives** — :func:`atomic_write_npz` commits an ``.npz`` via
  write-to-temp + ``os.replace`` so a crash mid-save can never leave a
  truncated file under the final name, and embeds a SHA-256 content
  checksum; :func:`read_verified_npz` re-derives and compares it, turning
  truncation, bit-flips and partial writes into a
  :class:`CheckpointCorruptionError` instead of an opaque numpy/zipfile
  error.
* **Training state** — :func:`save_training_checkpoint` captures everything
  a :class:`repro.nn.Trainer` run needs to continue *bit-exactly*: model
  parameters, optimizer state (Adam moments, step count, learning rate),
  the shuffling RNG's bit-generator state, and the per-epoch loss history.
  :class:`TrainingCheckpoint.restore` puts it all back.

This module deliberately imports nothing from the rest of ``repro`` so the
nn/parallel/experiment layers can depend on it without cycles.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CheckpointCorruptionError",
    "CheckpointConfig",
    "TrainingCheckpoint",
    "atomic_write_npz",
    "read_verified_npz",
    "normalize_npz_path",
    "save_training_checkpoint",
    "load_training_checkpoint",
]

#: npz entry holding the hex SHA-256 of every other entry.
CHECKSUM_KEY = "__checksum__"
#: npz entry holding the JSON-encoded non-array training state.
STATE_KEY = "__state__"

_PARAM_PREFIX = "param."
_OPT_PREFIX = "opt."


class CheckpointCorruptionError(RuntimeError):
    """A checkpoint file exists but cannot be trusted.

    Raised for truncated archives, bit-flipped payloads (checksum
    mismatch), and structurally incomplete checkpoints, always naming the
    offending path and the reason.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"{path}: corrupted checkpoint ({reason})")


def normalize_npz_path(path: str | Path) -> Path:
    """The on-disk name numpy would use: ``.npz`` appended when missing."""
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _digest(arrays: dict[str, np.ndarray]) -> str:
    """Order-independent SHA-256 over entry names, dtypes, shapes, bytes."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(repr(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _json_array(payload) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _json_load(array: np.ndarray):
    return json.loads(bytes(np.asarray(array, dtype=np.uint8)).decode())


def atomic_write_npz(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    compressed: bool = True,
) -> Path:
    """Write ``arrays`` as a checksummed ``.npz``, atomically.

    The archive is assembled in a temp file in the target directory and
    promoted with ``os.replace``, so readers either see the previous
    complete checkpoint or the new complete one — never a partial write.
    Returns the final path (with ``.npz`` appended when missing, matching
    ``np.savez`` semantics).
    """
    path = normalize_npz_path(path)
    arrays = dict(arrays)
    if CHECKSUM_KEY in arrays:
        raise ValueError(f"array name {CHECKSUM_KEY!r} is reserved")
    arrays[CHECKSUM_KEY] = np.frombuffer(_digest(arrays).encode(), dtype=np.uint8)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            writer = np.savez_compressed if compressed else np.savez
            writer(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def read_verified_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load an ``.npz``, verifying its embedded checksum when present.

    Archives written before checksums existed (no ``__checksum__`` entry)
    load as-is; any unreadable or mismatching archive raises
    :class:`CheckpointCorruptionError`.
    """
    path = normalize_npz_path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    try:
        with np.load(str(path)) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
    except (
        ValueError,
        OSError,
        EOFError,
        KeyError,
        NotImplementedError,
        zipfile.BadZipFile,
        zlib.error,
    ) as exc:
        # Damage surfaces differently depending on where it lands: zip
        # directory (BadZipFile), member payload (zlib.error / CRC
        # BadZipFile), npy header (ValueError), short reads (EOFError),
        # a flipped compression-method field (NotImplementedError).
        raise CheckpointCorruptionError(path, f"unreadable archive: {exc}") from exc
    recorded_raw = arrays.pop(CHECKSUM_KEY, None)
    if recorded_raw is not None:
        recorded = bytes(np.asarray(recorded_raw, dtype=np.uint8)).decode(
            "ascii", errors="replace"
        )
        actual = _digest(arrays)
        if recorded != actual:
            raise CheckpointCorruptionError(
                path, f"checksum mismatch: recorded {recorded[:12]}…, actual {actual[:12]}…"
            )
    return arrays


# ---------------------------------------------------------------------------
# training-state checkpoints


@dataclass
class CheckpointConfig:
    """Periodic-checkpoint policy for :meth:`repro.nn.Trainer.fit`.

    Parameters
    ----------
    path:
        Checkpoint file (one file, atomically replaced on every save).
    every:
        Save after every ``every`` completed epochs (and at the final one).
    """

    path: str | Path
    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {self.every}")
        self.path = normalize_npz_path(self.path)

    def due(self, completed_epochs: int, total_epochs: int) -> bool:
        return completed_epochs % self.every == 0 or completed_epochs == total_epochs


@dataclass
class TrainingCheckpoint:
    """One training run's full resumable state, as loaded from disk."""

    epoch: int                              # completed epochs
    parameters: dict[str, np.ndarray]       # "layer{i}.{name}" -> value
    optimizer_state: dict                   # Optimizer.state_dict() payload
    rng_state: dict                         # Generator.bit_generator.state
    history: dict[str, list[float]]         # TrainingHistory field lists
    meta: dict = field(default_factory=dict)

    def restore(self, model, optimizer, rng: np.random.Generator) -> None:
        """Load this state into a live model/optimizer/generator, in place."""
        for i, layer in enumerate(model.layers):
            for p in layer.parameters():
                key = f"{_PARAM_PREFIX}layer{i}.{p.name}"
                if key not in self.parameters:
                    raise ValueError(
                        f"checkpoint does not cover parameter layer{i}.{p.name}; "
                        "was it saved from a different architecture?"
                    )
                stored = self.parameters[key]
                if stored.shape != p.value.shape:
                    raise ValueError(
                        f"checkpoint shape mismatch at layer{i}.{p.name}: "
                        f"stored {stored.shape}, model has {p.value.shape}"
                    )
                p.value[...] = stored
        optimizer.load_state_dict(self.optimizer_state)
        rng.bit_generator.state = self.rng_state


def save_training_checkpoint(
    path: str | Path,
    *,
    model,
    optimizer,
    rng: np.random.Generator,
    history,
    epoch: int,
    meta: dict | None = None,
) -> Path:
    """Atomically persist a mid-run training state (see module docstring)."""
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(model.layers):
        for p in layer.parameters():
            arrays[f"{_PARAM_PREFIX}layer{i}.{p.name}"] = p.value
    opt_state = optimizer.state_dict()
    opt_scalars: dict = {}
    array_fields: dict[str, int] = {}
    for key, value in opt_state.items():
        if isinstance(value, list) and all(isinstance(v, np.ndarray) for v in value):
            array_fields[key] = len(value)
            for j, arr in enumerate(value):
                arrays[f"{_OPT_PREFIX}{key}.{j}"] = arr
        else:
            opt_scalars[key] = value
    state = {
        "format": 1,
        "epoch": int(epoch),
        "rng_state": rng.bit_generator.state,
        "optimizer": {"scalars": opt_scalars, "array_fields": array_fields},
        "history": {
            "train_loss": [float(v) for v in history.train_loss],
            "val_loss": [float(v) for v in history.val_loss],
            "epoch_seconds": [float(v) for v in history.epoch_seconds],
        },
        "meta": meta or {},
    }
    arrays[STATE_KEY] = _json_array(state)
    return atomic_write_npz(path, arrays)


def load_training_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Read and verify a checkpoint written by :func:`save_training_checkpoint`."""
    arrays = read_verified_npz(path)
    if STATE_KEY not in arrays:
        raise CheckpointCorruptionError(path, "missing training-state record")
    try:
        state = _json_load(arrays[STATE_KEY])
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptionError(path, f"undecodable training state: {exc}") from exc
    for required in ("epoch", "rng_state", "optimizer", "history"):
        if required not in state:
            raise CheckpointCorruptionError(path, f"training state lacks {required!r}")

    optimizer_state = dict(state["optimizer"].get("scalars", {}))
    for key, count in state["optimizer"].get("array_fields", {}).items():
        entries = []
        for j in range(int(count)):
            arr_key = f"{_OPT_PREFIX}{key}.{j}"
            if arr_key not in arrays:
                raise CheckpointCorruptionError(path, f"missing optimizer array {arr_key!r}")
            entries.append(arrays[arr_key])
        optimizer_state[key] = entries

    parameters = {k: v for k, v in arrays.items() if k.startswith(_PARAM_PREFIX)}
    if not parameters:
        raise CheckpointCorruptionError(path, "no model parameters recorded")
    history = state["history"]
    return TrainingCheckpoint(
        epoch=int(state["epoch"]),
        parameters=parameters,
        optimizer_state=optimizer_state,
        rng_state=state["rng_state"],
        history={
            "train_loss": list(history.get("train_loss", [])),
            "val_loss": list(history.get("val_loss", [])),
            "epoch_seconds": list(history.get("epoch_seconds", [])),
        },
        meta=dict(state.get("meta", {})),
    )
