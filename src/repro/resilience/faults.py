"""Deterministic, seedable fault injectors for the resilience test suite.

Every recovery path in ``repro`` is proven by *injecting* the failure it
guards against and asserting the system recovers:

* :class:`KillAtEpoch`        — crash a training run after a given epoch
  (after its checkpoint is written), simulating a killed worker;
* :class:`NaNGradientFault`   — wrap a loss so chosen batches produce
  all-NaN gradients, exercising the health-guard policies;
* :func:`poison_parameters`   — plant NaNs in model weights so inference
  yields non-finite predictions (graceful-degradation paths);
* :func:`truncate_file` / :func:`flip_bit` — corrupt a checkpoint on disk
  the way crashes and storage errors do;
* :class:`TransientFaultTask` / :class:`SlowTask` — picklable executor
  payloads that crash a worker process, raise once, or stall, driving the
  retry / broken-pool / timeout recovery of
  :class:`repro.parallel.ParallelExecutor`;
* :class:`RegionNaNFault` / :class:`RegionCrashFault` — interpolator
  wrappers that poison or fail specific spatial regions, driving the
  chunk-level fallback of :func:`repro.parallel.parallel_reconstruct`.

Injectors take explicit targets (epoch numbers, payload sets, spatial
thresholds) or seeds — never wall-clock or ambient randomness — so every
fault is reproducible.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SimulatedCrash",
    "KillAtEpoch",
    "NaNGradientFault",
    "poison_parameters",
    "truncate_file",
    "flip_bit",
    "TransientFaultTask",
    "SlowTask",
    "RegionNaNFault",
    "RegionCrashFault",
    "ShmUnavailableFault",
]


class SimulatedCrash(RuntimeError):
    """An injected failure (never raised by production code paths)."""


# ---------------------------------------------------------------------------
# training faults


class KillAtEpoch:
    """``Trainer.fit`` callback that crashes once epoch ``epoch`` completes.

    The trainer invokes callbacks after the epoch's checkpoint is written,
    so this models a process killed between checkpoints.
    """

    def __init__(self, epoch: int) -> None:
        self.epoch = int(epoch)

    def __call__(self, epoch: int, history) -> None:
        if epoch >= self.epoch:
            raise SimulatedCrash(f"injected kill after epoch {epoch}")


class NaNGradientFault:
    """Loss wrapper whose gradient is all-NaN on chosen calls.

    ``at_calls`` is a set of 0-based gradient-call ordinals (one call per
    batch); ``None`` poisons *every* call, which exhausts any rollback
    budget — useful for asserting the retry cap.
    """

    def __init__(self, inner, at_calls=(0,)) -> None:
        self.inner = inner
        self.at_calls = None if at_calls is None else {int(c) for c in at_calls}
        self.calls = 0

    @property
    def name(self) -> str:
        return f"nan-fault({getattr(self.inner, 'name', 'loss')})"

    def value(self, prediction, target) -> float:
        return self.inner.value(prediction, target)

    def gradient(self, prediction, target):
        grad = self.inner.gradient(prediction, target)
        if self.at_calls is None or self.calls in self.at_calls:
            grad = np.full_like(grad, np.nan)
        self.calls += 1
        return grad


def poison_parameters(model, count: int = 1, seed: int = 0, target: str = "random") -> list[str]:
    """Plant ``count`` NaNs in deterministic parameter entries.

    Returns the names of the affected parameters.  Used to force non-finite
    FCNN predictions without touching the inference code.

    ``target="random"`` scatters NaNs anywhere (note that saturating
    activations can silence hidden-layer NaNs); ``target="head"`` poisons
    the *first output column* of the model's final parameter — for the
    paper's FCNN that is the scalar prediction's bias, guaranteeing every
    prediction goes non-finite.
    """
    params = model.parameters()
    touched = []
    if target == "head":
        for _ in range(int(count)):
            params[-1].value.ravel()[0] = np.nan
            touched.append(params[-1].name)
        return touched
    if target != "random":
        raise ValueError(f"target must be 'random' or 'head', got {target!r}")
    rng = np.random.default_rng(seed)
    for _ in range(int(count)):
        p = params[int(rng.integers(len(params)))]
        flat = p.value.ravel()
        flat[int(rng.integers(flat.size))] = np.nan
        touched.append(p.name)
    return touched


# ---------------------------------------------------------------------------
# on-disk checkpoint corruption


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to ``keep_fraction`` of its bytes; returns new size."""
    if not (0.0 <= keep_fraction < 1.0):
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    path = Path(path)
    data = path.read_bytes()
    kept = data[: int(len(data) * keep_fraction)]
    path.write_bytes(kept)
    return len(kept)


def flip_bit(path: str | Path, seed: int = 0) -> tuple[int, int]:
    """Flip one deterministic bit in the middle of ``path``.

    The byte is drawn from the central 80% of the file (skipping archive
    headers/trailers that may be checked first) from ``seed``.  Returns the
    ``(byte_offset, bit)`` flipped.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if len(data) < 16:
        raise ValueError(f"{path}: too small to corrupt meaningfully")
    rng = np.random.default_rng(seed)
    lo, hi = int(len(data) * 0.1), int(len(data) * 0.9)
    offset = int(rng.integers(lo, hi))
    bit = int(rng.integers(8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return offset, bit


# ---------------------------------------------------------------------------
# executor faults (picklable callables — they cross process boundaries)


class TransientFaultTask:
    """Picklable task wrapper that fails exactly once per crash payload.

    State lives in marker files under ``state_dir`` so the "already
    failed?" decision is deterministic across processes and retries: the
    first execution of a payload in ``crash_on`` trips the fault, every
    re-execution succeeds.

    ``mode`` selects the failure: ``"raise"`` raises
    :class:`SimulatedCrash` inside the worker, ``"exit"`` kills the worker
    process outright (driving ``BrokenProcessPool`` recovery).
    """

    def __init__(self, fn, state_dir: str | Path, crash_on=(), mode: str = "raise") -> None:
        if mode not in ("raise", "exit"):
            raise ValueError(f"mode must be 'raise' or 'exit', got {mode!r}")
        self.fn = fn
        self.state_dir = str(state_dir)
        self.crash_on = set(crash_on)
        self.mode = mode

    def _marker(self, payload) -> str:
        tag = hashlib.sha1(repr(payload).encode()).hexdigest()[:16]
        return os.path.join(self.state_dir, f"fault-{tag}.tripped")

    def __call__(self, payload):
        if payload in self.crash_on:
            marker = self._marker(payload)
            if not os.path.exists(marker):
                with open(marker, "w", encoding="ascii") as fh:
                    fh.write("tripped\n")
                if self.mode == "exit":
                    os._exit(23)
                raise SimulatedCrash(f"injected worker failure for payload {payload!r}")
        return self.fn(payload)


class SlowTask:
    """Picklable task wrapper stalling for ``delay`` seconds on chosen payloads."""

    def __init__(self, fn, slow_on=(), delay: float = 1.0) -> None:
        self.fn = fn
        self.slow_on = set(slow_on)
        self.delay = float(delay)

    def __call__(self, payload):
        if payload in self.slow_on:
            time.sleep(self.delay)
        return self.fn(payload)


# ---------------------------------------------------------------------------
# reconstruction faults (interpolator wrappers)


class RegionNaNFault:
    """Interpolator wrapper: predictions with ``query[axis] >= threshold`` become NaN.

    Spatially-targeted so only the chunks covering that region degrade —
    the fallback path must flag those and leave the rest bit-identical.
    """

    name = "region-nan-fault"

    def __init__(self, inner, axis: int = 0, threshold: float = 0.5) -> None:
        self.inner = inner
        self.axis = int(axis)
        self.threshold = float(threshold)

    def interpolate(self, points, values, query, grid):
        out = np.array(
            self.inner.interpolate(points, values, query, grid), dtype=np.float64
        )
        out[np.asarray(query)[:, self.axis] >= self.threshold] = np.nan
        return out

    def reconstruct(self, sample, target_grid=None):
        return self.inner.reconstruct(sample, target_grid=target_grid)


class RegionCrashFault:
    """Interpolator wrapper raising :class:`SimulatedCrash` for chunks touching a region."""

    name = "region-crash-fault"

    def __init__(self, inner, axis: int = 0, threshold: float = 0.5) -> None:
        self.inner = inner
        self.axis = int(axis)
        self.threshold = float(threshold)

    def interpolate(self, points, values, query, grid):
        if np.any(np.asarray(query)[:, self.axis] >= self.threshold):
            raise SimulatedCrash(
                f"injected interpolator failure for region axis{self.axis} >= {self.threshold}"
            )
        return self.inner.interpolate(points, values, query, grid)


# ---------------------------------------------------------------------------
# shared-memory transport faults


class ShmUnavailableFault:
    """Context manager making shared-memory creation and/or attachment fail.

    ``transport="auto"`` paths (:func:`repro.parallel.parallel_reconstruct`,
    the warm campaign pool in :mod:`repro.perf.campaign`) promise to fall
    back to pickle/local execution when ``/dev/shm`` is restricted — this
    injector makes that environment reproducible on hosts where shm works:

    * ``mode="create"`` — :meth:`repro.perf.shm.SharedArrayBundle.create`
      raises :class:`OSError`, as on a host without (or with a full)
      ``/dev/shm``;
    * ``mode="attach"`` — :func:`repro.perf.shm._attach` raises
      :class:`OSError`, as when a worker's attach races segment cleanup.
      Only the *current process* is affected (child processes import their
      own unpatched module), so attach faults drive the in-process /
      serial-fallback paths deterministically;
    * ``mode="both"`` — both of the above.

    ``fires`` counts injected failures, letting tests assert the fault
    actually hit the path under test.
    """

    name = "shm-unavailable-fault"

    def __init__(self, mode: str = "create") -> None:
        if mode not in ("create", "attach", "both"):
            raise ValueError(f"mode must be 'create', 'attach' or 'both', got {mode!r}")
        self.mode = mode
        self.fires = 0
        self._saved: dict[str, object] = {}

    def _raise(self, what: str):
        self.fires += 1
        raise OSError(f"injected shared-memory failure ({what} unavailable)")

    def __enter__(self) -> "ShmUnavailableFault":
        from repro.perf import shm as shm_mod

        self._shm_mod = shm_mod
        if self.mode in ("create", "both"):
            self._saved["create"] = shm_mod.SharedArrayBundle.create

            def fail_create(cls, arrays):
                self._raise("segment creation")

            shm_mod.SharedArrayBundle.create = classmethod(fail_create)
        if self.mode in ("attach", "both"):
            self._saved["_attach"] = shm_mod._attach

            def fail_attach(name):
                self._raise(f"attach to {name!r}")

            shm_mod._attach = fail_attach
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if "create" in self._saved:
            self._shm_mod.SharedArrayBundle.create = self._saved.pop("create")
        if "_attach" in self._saved:
            self._shm_mod._attach = self._saved.pop("_attach")
        return False
