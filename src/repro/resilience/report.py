"""Structured degradation reports for reconstruction paths.

A reconstruction that silently papers over failed or non-finite chunks is
worse than one that crashes — downstream metrics would score garbage as
signal.  Fallback paths therefore flag every degraded region here, and
callers can assert ``report.ok`` (or inspect what degraded and why) before
trusting a field.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DegradedRegion", "ReconstructionReport"]


@dataclass(frozen=True)
class DegradedRegion:
    """One region whose values came from a fallback, not the primary method."""

    index: int      # chunk index (chunked paths) or region ordinal
    size: int       # number of grid points affected
    reason: str     # what went wrong ("non-finite predictions", task error, …)
    method: str     # fallback method that produced the replacement values


@dataclass
class ReconstructionReport:
    """Outcome metadata for one reconstruction."""

    total_points: int
    degraded: list[DegradedRegion] = field(default_factory=list)
    fallback_method: str | None = None

    @property
    def ok(self) -> bool:
        """True when no region needed a fallback."""
        return not self.degraded

    @property
    def degraded_points(self) -> int:
        return sum(r.size for r in self.degraded)

    @property
    def degraded_fraction(self) -> float:
        if self.total_points <= 0:
            return 0.0
        return self.degraded_points / self.total_points

    def flag(self, index: int, size: int, reason: str, method: str) -> None:
        """Record one degraded region."""
        self.degraded.append(DegradedRegion(int(index), int(size), reason, method))

    @classmethod
    def merged(cls, reports: "list[ReconstructionReport]") -> "ReconstructionReport":
        """Aggregate per-chunk/per-timestep reports into one campaign view.

        Region ordinals are re-numbered in merge order (each source
        report's regions keep their relative order), ``total_points`` sum,
        and ``fallback_method`` is kept when every degraded source agrees
        (mixed methods show as ``"mixed"``).
        """
        out = cls(total_points=sum(r.total_points for r in reports))
        methods = {r.fallback_method for r in reports if r.degraded and r.fallback_method}
        out.fallback_method = methods.pop() if len(methods) == 1 else (
            "mixed" if methods else None
        )
        for report in reports:
            for region in report.degraded:
                out.flag(len(out.degraded), region.size, region.reason, region.method)
        return out

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.ok:
            return "reconstruction healthy: no degraded regions"
        return (
            f"{len(self.degraded)} degraded region(s), "
            f"{self.degraded_points}/{self.total_points} points "
            f"({self.degraded_fraction:.2%}) filled by {self.fallback_method or 'fallback'}"
        )
