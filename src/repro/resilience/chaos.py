"""End-to-end chaos harness: deterministic fault schedules over campaigns.

The PR 2 injectors (:mod:`repro.resilience.faults`) break one component at
a time; this module composes them with *process-level* faults and drives
whole pipelined campaigns under a schedule, so the crash-safety contract
("kill it anywhere, resume bit-identically, degrade boundedly") is a test
assertion rather than a hope:

* :class:`Fault` / :class:`FaultSchedule` — declarative "at stage S of
  timestep T, do X" with bounded fire budgets, safe to fire from any
  scheduler thread.  Plug a schedule's :meth:`~FaultSchedule.fire` into
  the campaign ``on_stage`` hooks
  (:meth:`repro.core.ReconstructionPipeline.run_campaign`,
  :meth:`repro.insitu.InSituWriter.run`);
* :class:`ChaosSink` — wraps a reconstruction sink so ``reconstruct``
  faults target specific timesteps (poison-timestep quarantine paths);
* :class:`WorkerKillFault` — picklable warm-pool worker that kills its
  *worker process* at a chosen chunk, exactly once (marker-file
  determinism across processes);
* :func:`torn_tail` — truncate a journal the way a crash does (drop the
  fsync boundary, optionally leave a half-written record);
* :func:`directory_digest` — content hashes of a campaign directory
  (``.wal/`` bookkeeping excluded) for byte-identity assertions.

Every fault here is deterministic: schedules trigger on (stage, timestep)
coordinates and explicit budgets, never wall-clock or randomness.

Unlike the rest of :mod:`repro.resilience`, the harness may reach *into*
the campaign stack (it exists to break it), so the package root does not
import this module — use ``import repro.resilience.chaos`` explicitly.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import record_event
from repro.resilience.faults import SimulatedCrash

__all__ = [
    "Fault",
    "FaultSchedule",
    "ChaosSink",
    "WorkerKillFault",
    "torn_tail",
    "directory_digest",
]

KINDS = ("raise", "stall", "sigterm")


@dataclass
class Fault:
    """One scheduled fault.

    ``stage`` matches the campaign's ``on_stage`` names (``materialize`` /
    ``process`` / ``emit``) or ``reconstruct`` via :class:`ChaosSink`;
    ``timestep=None`` matches every timestep.  ``times`` bounds how often
    the fault fires (``-1`` = permanent — the poison-timestep case).
    """

    stage: str
    timestep: int | None = None
    kind: str = "raise"        # "raise" | "stall" | "sigterm"
    times: int = 1             # fire budget; -1 = unlimited
    delay: float = 0.0         # stall duration (kind="stall")
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")

    def matches(self, stage: str, timestep: int) -> bool:
        if self.stage != stage:
            return False
        if self.timestep is not None and self.timestep != timestep:
            return False
        return self.times < 0 or self.fired < self.times

    def act(self, stage: str, timestep: int) -> None:
        if self.kind == "stall":
            time.sleep(self.delay)
            return
        if self.kind == "sigterm":
            os.kill(os.getpid(), signal.SIGTERM)
            return
        raise SimulatedCrash(
            f"injected chaos fault at stage {stage!r}, timestep {timestep}"
        )


class FaultSchedule:
    """A thread-safe set of faults fired from campaign stage hooks.

    ``schedule.fire`` is shaped exactly like the campaign ``on_stage``
    hooks (``fn(stage, timestep)``), so wiring a campaign under chaos is::

        schedule = FaultSchedule([Fault("process", timestep=16)])
        pipeline.run_campaign(..., on_stage=schedule.fire)

    ``fired`` records every injection as ``(stage, timestep, kind)`` —
    assert on it so a test that expected chaos actually got some.
    """

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults = list(faults or [])
        self.fired: list[tuple[str, int, str]] = []
        self._lock = threading.Lock()

    def add(self, fault: Fault) -> "FaultSchedule":
        with self._lock:
            self.faults.append(fault)
        return self

    def fire(self, stage: str, timestep: int) -> None:
        """Fire the first matching fault with budget (stage hook shape)."""
        timestep = int(timestep)
        with self._lock:
            fault = next(
                (f for f in self.faults if f.matches(stage, timestep)), None
            )
            if fault is None:
                return
            fault.fired += 1
            self.fired.append((stage, timestep, fault.kind))
        record_event(
            "chaos.fault", stage=stage, timestep=timestep, fault_kind=fault.kind
        )
        fault.act(stage, timestep)


class ChaosSink:
    """Reconstruction-sink wrapper injecting faults per published timestep.

    ``publish`` remembers which timestep owns which slot, so a
    ``reconstruct``-stage fault can target timestep coordinates even
    though sinks speak in slots.  Everything else delegates unchanged —
    the wrapped sink still closes, degrades and reports exactly as the
    real one.
    """

    def __init__(self, inner, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self._slot_timestep: dict[int, int] = {}
        self._lock = threading.Lock()

    @property
    def executor(self):
        return getattr(self.inner, "executor", None)

    def publish(self, timestep: int, values, weights) -> int:
        slot = self.inner.publish(timestep, values, weights)
        with self._lock:
            self._slot_timestep[slot] = int(timestep)
        return slot

    def reconstruct(self, slot: int, tag: str):
        with self._lock:
            timestep = self._slot_timestep.get(slot, -1)
        self.schedule.fire("reconstruct", timestep)
        return self.inner.reconstruct(slot, tag)

    def close(self) -> None:
        self.inner.close()


class WorkerKillFault:
    """Picklable warm-pool worker killing its worker process, exactly once.

    Pass as ``worker_fn=`` to
    :class:`repro.perf.campaign.WarmReconstructionPool`.  The marker file
    makes "already crashed?" deterministic across processes, so the
    executor's broken-pool recovery (serial re-run, pool recycle) runs
    exactly once per campaign.  In-process execution (the executor's
    serial fallback) is never killed — only a real worker process dies.
    """

    def __init__(self, state_dir, exit_code: int = 23) -> None:
        self.state_dir = str(state_dir)
        self.exit_code = int(exit_code)
        self.parent_pid = os.getpid()

    @property
    def marker(self) -> str:
        return os.path.join(self.state_dir, "chaos-worker-kill.tripped")

    @property
    def tripped(self) -> bool:
        return os.path.exists(self.marker)

    def __call__(self, payload):
        from repro.perf.campaign import _campaign_worker

        if os.getpid() != self.parent_pid and not os.path.exists(self.marker):
            with open(self.marker, "w", encoding="ascii") as fh:
                fh.write("tripped\n")
            os._exit(self.exit_code)
        return _campaign_worker(payload)


def torn_tail(journal_path: str | os.PathLike, *, drop_records: int = 1, partial: bool = True) -> int:
    """Truncate a journal the way a mid-write crash does.

    Removes the last ``drop_records`` complete records and, with
    ``partial=True``, leaves the first half of the next-dropped record as
    a torn (checksum-failing) tail.  Returns the number of bytes removed.
    The journal loader must silently drop the tail and resume from the
    last intact record.
    """
    path = Path(journal_path)
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if drop_records <= 0 or not lines:
        return 0
    drop_records = min(drop_records, len(lines))
    kept, dropped = lines[:-drop_records], lines[-drop_records:]
    out = b"".join(line + b"\n" for line in kept)
    if partial:
        out += dropped[0][: max(1, len(dropped[0]) // 2)]
    path.write_bytes(out)
    return len(raw) - len(out)


def directory_digest(
    root: str | os.PathLike, *, ignore: tuple[str, ...] = (".wal",)
) -> dict[str, str]:
    """``{relative_path: sha256}`` for every file under ``root``.

    ``ignore`` prunes top-level bookkeeping directories (the WAL is
    *supposed* to differ between an interrupted+resumed run and an
    uninterrupted one; the campaign artifact is not).
    """
    root = Path(root)
    digest: dict[str, str] = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] in ignore:
            continue
        digest[str(rel)] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digest
