"""Durable write-ahead journal for crash-safe campaigns.

A campaign that dies at timestep 37 of 50 must not restart from zero.
:class:`CampaignJournal` records per-timestep stage completion
(``sampled -> fine-tuned -> reconstructed -> emitted``) as an append-only
JSONL file where every record carries its own checksum and is flushed and
fsynced before the campaign proceeds.  On restart, :meth:`CampaignJournal.plan`
computes the contiguous prefix of timesteps whose terminal ``emitted``
record is durable (optionally re-verified against on-disk content hashes),
so ``repro campaign --resume`` skips exactly that prefix bit-identically
and re-enters the pipeline mid-stream.

Durability contract:

* every :meth:`~CampaignJournal.record` call writes one line, flushes, and
  ``os.fsync``\\ s before returning — a record observed by the caller
  survives the process dying immediately after;
* a torn tail (the crash interrupted the final ``write``) is detected by
  the per-line checksum and silently dropped on load;
* corruption *before* intact records (a flipped bit, an editor mangling
  the file) is not recoverable bookkeeping — it raises
  :class:`JournalCorruptionError` rather than resuming from a lie.

Model state needed for bit-exact resume (flat fine-tuned weights per
timestep) is stored next to the journal via the PR 2 atomic checkpoint
primitives (:func:`repro.resilience.checkpoint.atomic_write_npz`), see
:meth:`CampaignJournal.save_state` / :meth:`CampaignJournal.load_state`.

This module imports only :mod:`repro.obs` (which itself imports nothing
from the rest of ``repro``), keeping ``repro.resilience`` dependency-free
for every other layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.obs import counter, record_event
from repro.resilience.checkpoint import atomic_write_npz, read_verified_npz

__all__ = [
    "STAGES",
    "TERMINAL_STAGE",
    "CampaignJournal",
    "JournalCorruptionError",
    "JournalEntry",
    "ResumePlan",
    "content_hash",
]

#: Per-timestep pipeline stages, in completion order.
STAGES = ("sampled", "fine-tuned", "reconstructed", "emitted")

#: The stage whose durable record marks a timestep as fully done.
TERMINAL_STAGE = "emitted"

_META_STAGE = "meta"
_FORMAT = "repro-campaign-journal/1"


class JournalCorruptionError(RuntimeError):
    """A journal record before the tail failed its checksum or parse."""

    def __init__(self, path: os.PathLike | str, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt campaign journal {self.path}: {reason}")


def content_hash(data: bytes | np.ndarray) -> str:
    """Stable short content hash (blake2b-128 hex) of bytes or an array."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _record_checksum(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One durable journal record."""

    seq: int
    timestep: int
    stage: str
    payload: dict


@dataclass(frozen=True)
class ResumePlan:
    """What a resumed campaign skips and what it still runs.

    ``completed`` is the contiguous prefix of the requested timesteps whose
    terminal records are durable (and verified, when a verifier was given);
    model state is sequential across timesteps, so a gap ends the skippable
    prefix even if later timesteps also finished.
    """

    completed: tuple[int, ...]
    remaining: tuple[int, ...]
    #: terminal-stage payload per completed timestep, in order
    payloads: tuple[dict, ...] = ()

    @property
    def fresh(self) -> bool:
        return not self.completed


class CampaignJournal:
    """Append-only, checksummed, fsynced campaign journal.

    Parameters
    ----------
    path:
        Journal file (conventionally ``<campaign dir>/.wal/journal.jsonl``).
        Parent directories are created.  Sidecar model states live next to
        it (``state_t*.npz``).
    config:
        Campaign configuration dict recorded as the first (``meta``)
        record.  On ``resume=True`` the stored config must match — resuming
        a campaign under different parameters would silently mix
        incompatible outputs.
    resume:
        ``True`` loads existing records (tolerating a torn tail) and keeps
        appending; ``False`` (a fresh run) truncates any stale journal.

    Thread safety: :meth:`record` may be called from the pipelined
    scheduler's caller and emit threads concurrently; appends are
    serialized by an internal lock.
    """

    def __init__(
        self,
        path: os.PathLike | str,
        *,
        config: dict | None = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self.entries: list[JournalEntry] = []
        self.torn_tail = False
        self.config: dict | None = None
        if resume and self.path.exists():
            self._load()
            if config is not None:
                if self.config is not None and self.config != dict(config):
                    raise JournalCorruptionError(
                        self.path,
                        "stored campaign config does not match the resume request "
                        f"(stored {self.config!r} != requested {dict(config)!r})",
                    )
                if self.config is None:
                    # Journal lost even its meta record (aggressive truncation):
                    # re-record the config so the next resume can verify again.
                    self._append(_META_STAGE, -1, {"config": dict(config)})
                    self.config = dict(config)
        else:
            self._file = open(self.path, "w", encoding="utf-8")
            if config is not None:
                self._append(_META_STAGE, -1, {"config": dict(config)})
                self.config = dict(config)
        counter("journal.opened").inc()

    # ------------------------------------------------------------------ load
    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        parsed: list[JournalEntry] = []
        bad_at: int | None = None
        bad_reason = ""
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            entry, reason = self._parse_line(line)
            if entry is None:
                if bad_at is None:
                    bad_at, bad_reason = lineno, reason
                continue
            if bad_at is not None:
                # Intact records *after* a bad one: interior corruption, not
                # a torn tail.  Resuming past it could skip work that never
                # happened — refuse.
                raise JournalCorruptionError(
                    self.path, f"line {bad_at + 1}: {bad_reason} (intact records follow)"
                )
            parsed.append(entry)
        if bad_at is not None:
            self.torn_tail = True
            record_event(
                "journal.torn_tail",
                path=str(self.path),
                line=bad_at + 1,
                reason=bad_reason,
            )
            counter("journal.torn_tails").inc()
        for entry in parsed:
            if entry.stage == _META_STAGE:
                self.config = dict(entry.payload.get("config", {}))
            else:
                self.entries.append(entry)
        self._seq = (parsed[-1].seq + 1) if parsed else 0
        # Rewrite the durable prefix so appends never follow a torn tail.
        mode = "w" if self.torn_tail else "a"
        self._file = open(self.path, mode, encoding="utf-8")
        if self.torn_tail:
            for entry in parsed:
                self._write_entry(entry)

    def _parse_line(self, line: bytes) -> tuple[JournalEntry | None, str]:
        try:
            obj = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"unparsable record ({type(exc).__name__})"
        if not isinstance(obj, dict):
            return None, "record is not an object"
        sha = obj.pop("sha", None)
        if sha is None or _record_checksum(obj) != sha:
            return None, "checksum mismatch"
        try:
            return (
                JournalEntry(
                    seq=int(obj["seq"]),
                    timestep=int(obj["t"]),
                    stage=str(obj["stage"]),
                    payload=dict(obj.get("payload", {})),
                ),
                "",
            )
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"malformed record ({type(exc).__name__})"

    # ---------------------------------------------------------------- append
    def _write_entry(self, entry: JournalEntry) -> None:
        body = {
            "seq": entry.seq,
            "t": entry.timestep,
            "stage": entry.stage,
            "payload": entry.payload,
        }
        body["sha"] = _record_checksum(
            {k: body[k] for k in ("seq", "t", "stage", "payload")}
        )
        self._file.write(json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def _append(self, stage: str, timestep: int, payload: dict) -> JournalEntry:
        entry = JournalEntry(self._seq, int(timestep), stage, payload)
        self._write_entry(entry)
        self._seq += 1
        if stage != _META_STAGE:
            self.entries.append(entry)
        return entry

    def record(self, timestep: int, stage: str, **payload: Any) -> JournalEntry:
        """Durably record that ``stage`` completed for ``timestep``.

        Returns only after the record is flushed and fsynced.
        """
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        with self._lock:
            entry = self._append(stage, timestep, dict(payload))
        counter("journal.records").inc()
        return entry

    # ----------------------------------------------------------------- query
    def stage_payload(self, timestep: int, stage: str) -> dict | None:
        """Payload of the latest record for ``(timestep, stage)``, or None."""
        with self._lock:
            for entry in reversed(self.entries):
                if entry.timestep == timestep and entry.stage == stage:
                    return dict(entry.payload)
        return None

    def completed(self, timestep: int) -> bool:
        """True when the terminal stage is durably recorded for ``timestep``."""
        return self.stage_payload(timestep, TERMINAL_STAGE) is not None

    def plan(
        self,
        timesteps: Sequence[int],
        verify: Callable[[int, dict], bool] | None = None,
    ) -> ResumePlan:
        """Resume plan for ``timesteps``: skip the completed verified prefix.

        ``verify(timestep, payload) -> bool`` can re-check the journal's
        claims against the world (e.g. emitted-file content hashes); the
        skippable prefix ends at the first timestep that is missing,
        unverifiable, or out of order.
        """
        completed: list[int] = []
        payloads: list[dict] = []
        for t in timesteps:
            payload = self.stage_payload(t, TERMINAL_STAGE)
            if payload is None:
                break
            if verify is not None and not verify(t, payload):
                record_event("journal.verify_failed", timestep=int(t))
                break
            completed.append(int(t))
            payloads.append(payload)
        remaining = tuple(int(t) for t in timesteps[len(completed):])
        return ResumePlan(tuple(completed), remaining, tuple(payloads))

    # ------------------------------------------------------- model state WAL
    def state_path(self, timestep: int) -> Path:
        return self.path.parent / f"state_t{int(timestep):06d}.npz"

    def save_state(self, timestep: int, flat: np.ndarray) -> Path:
        """Atomically persist the flat model weights after ``timestep``."""
        path = self.state_path(timestep)
        atomic_write_npz(path, {"flat": np.asarray(flat)})
        return path

    def load_state(self, timestep: int) -> np.ndarray:
        """Load (and checksum-verify) the flat weights saved for ``timestep``."""
        return read_verified_npz(self.state_path(timestep))["flat"]

    # -------------------------------------------------------------- manifest
    def manifest_path(self) -> Path:
        return self.path.parent / "resume-manifest.json"

    def write_manifest(
        self,
        *,
        reason: str,
        completed: Iterable[int],
        remaining: Iterable[int],
    ) -> Path:
        """Atomically write a human/machine-readable resume manifest.

        Emitted on graceful interruption (and harmless to write at any
        time): it names the completed prefix, what remains, and the exact
        command-level contract — re-run with ``resume`` to continue.
        """
        manifest = {
            "format": _FORMAT,
            "reason": reason,
            "journal": self.path.name,
            "completed": [int(t) for t in completed],
            "remaining": [int(t) for t in remaining],
            "config": self.config,
            "resume": "re-run the same campaign with resume enabled "
            "(repro campaign --resume) to continue from the journal",
        }
        path = self.manifest_path()
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        record_event(
            "journal.manifest",
            path=str(path),
            reason=reason,
            completed=len(manifest["completed"]),
            remaining=len(manifest["remaining"]),
        )
        return path

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if getattr(self, "_file", None) is not None and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
