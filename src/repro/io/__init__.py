"""Minimal, dependency-free VTK XML file I/O.

The paper's workflow stores the original regular grid as ``.vti`` (VTK XML
ImageData), the sampled point cloud as ``.vtp`` (VTK XML PolyData), and the
reconstruction again as ``.vti``.  This package implements just enough of
both formats — ASCII and inline base64 binary encodings — to keep that
on-disk workflow without depending on the VTK library.  Files written here
are valid VTK XML and load in ParaView.
"""

from repro.io.vti import read_vti, write_vti
from repro.io.vtp import read_vtp, write_vtp
from repro.io.pvd import read_pvd, write_pvd

__all__ = ["read_vti", "write_vti", "read_vtp", "write_vtp", "read_pvd", "write_pvd"]
