"""VTK XML ImageData (.vti) read/write.

A ``.vti`` file stores a uniform grid (:class:`~repro.grid.UniformGrid`)
plus point-data arrays.  VTK's point ordering has x varying fastest, so
fields stored as C-ordered ``(nx, ny, nz)`` arrays are transposed to Fortran
order on write and back on read.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np

from repro.grid import UniformGrid
from repro.io.common import decode_data_array, encode_data_array

__all__ = ["write_vti", "read_vti"]


def write_vti(
    path: str | Path,
    grid: UniformGrid,
    point_data: dict[str, np.ndarray],
    binary: bool = True,
) -> None:
    """Write a uniform grid and its point-data fields as a ``.vti`` file.

    Parameters
    ----------
    path:
        Output file path.
    grid:
        Grid geometry.
    point_data:
        Mapping of array name to a field that is flat ``(N,)``, shaped
        ``grid.dims`` (scalars), or ``(N, C)`` (vectors, flat point order).
    binary:
        Use inline base64 binary encoding (default) or ASCII.
    """
    nx, ny, nz = grid.dims
    extent = f"0 {nx - 1} 0 {ny - 1} 0 {nz - 1}"

    root = ET.Element(
        "VTKFile",
        {
            "type": "ImageData",
            "version": "1.0",
            "byte_order": "LittleEndian",
            "header_type": "UInt64",
        },
    )
    image = ET.SubElement(
        root,
        "ImageData",
        {
            "WholeExtent": extent,
            "Origin": " ".join(repr(v) for v in grid.origin),
            "Spacing": " ".join(repr(v) for v in grid.spacing),
        },
    )
    piece = ET.SubElement(image, "Piece", {"Extent": extent})
    pd = ET.SubElement(piece, "PointData")
    if point_data:
        pd.set("Scalars", next(iter(point_data)))

    for name, values in point_data.items():
        values = np.asarray(values)
        if values.ndim >= 2 and values.shape[-1] not in (1,) and values.ndim == 2 and values.shape[0] == grid.num_points:
            # (N, C) vector data in flat C order -> reorder points to VTK order.
            arr = values.reshape(*grid.dims, values.shape[1])
            arr = np.transpose(arr, (2, 1, 0, 3)).reshape(-1, values.shape[1])
        else:
            field = grid.validate_field(values)
            arr = field.transpose(2, 1, 0).ravel()
        encode_data_array(pd, name, arr, binary=binary)

    ET.indent(root)
    tree = ET.ElementTree(root)
    tree.write(str(path), xml_declaration=True, encoding="utf-8")


def read_vti(path: str | Path) -> tuple[UniformGrid, dict[str, np.ndarray]]:
    """Read a ``.vti`` file written by :func:`write_vti` (or VTK).

    Returns
    -------
    ``(grid, point_data)`` where each scalar array is shaped ``grid.dims``
    (C order) and vector arrays are ``(N, C)`` in flat C point order.
    """
    tree = ET.parse(str(path))
    root = tree.getroot()
    if root.tag != "VTKFile" or root.get("type") != "ImageData":
        raise ValueError(f"{path}: not a VTK XML ImageData file")
    header_type = root.get("header_type", "UInt32")

    image = root.find("ImageData")
    if image is None:
        raise ValueError(f"{path}: missing <ImageData> element")
    ext = [int(v) for v in image.get("WholeExtent", "").split()]
    if len(ext) != 6:
        raise ValueError(f"{path}: bad WholeExtent")
    dims = (ext[1] - ext[0] + 1, ext[3] - ext[2] + 1, ext[5] - ext[4] + 1)
    origin = tuple(float(v) for v in image.get("Origin", "0 0 0").split())
    spacing = tuple(float(v) for v in image.get("Spacing", "1 1 1").split())
    grid = UniformGrid(dims, spacing, origin)

    point_data: dict[str, np.ndarray] = {}
    piece = image.find("Piece")
    pd = piece.find("PointData") if piece is not None else None
    if pd is not None:
        for el in pd.findall("DataArray"):
            arr = decode_data_array(el, header_type=header_type)
            name = el.get("Name", f"array{len(point_data)}")
            if arr.ndim == 1:
                nx, ny, nz = dims
                point_data[name] = arr.reshape(nz, ny, nx).transpose(2, 1, 0)
            else:
                ncomp = arr.shape[1]
                vol = arr.reshape(dims[2], dims[1], dims[0], ncomp)
                point_data[name] = vol.transpose(2, 1, 0, 3).reshape(-1, ncomp)
    return grid, point_data
