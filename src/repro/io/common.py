"""Shared pieces of the VTK XML encoders/decoders.

VTK XML stores arrays either as whitespace-separated ASCII or as base64
blobs prefixed by a base64-encoded byte-count header.  We emit
``header_type="UInt64"`` and little-endian data, and decode both UInt32 and
UInt64 headers on read.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET

import numpy as np

__all__ = [
    "VTK_TYPE_TO_DTYPE",
    "DTYPE_TO_VTK_TYPE",
    "encode_data_array",
    "decode_data_array",
]

VTK_TYPE_TO_DTYPE: dict[str, np.dtype] = {
    "Float32": np.dtype("<f4"),
    "Float64": np.dtype("<f8"),
    "Int8": np.dtype("<i1"),
    "Int16": np.dtype("<i2"),
    "Int32": np.dtype("<i4"),
    "Int64": np.dtype("<i8"),
    "UInt8": np.dtype("<u1"),
    "UInt16": np.dtype("<u2"),
    "UInt32": np.dtype("<u4"),
    "UInt64": np.dtype("<u8"),
}

DTYPE_TO_VTK_TYPE: dict[str, str] = {
    str(np.dtype(dt)): name for name, dt in VTK_TYPE_TO_DTYPE.items()
}
# Native-endian aliases map to the same VTK names.
for _name, _dt in list(VTK_TYPE_TO_DTYPE.items()):
    DTYPE_TO_VTK_TYPE[str(np.dtype(_dt.str.lstrip("<>=")))] = _name


def vtk_type_for(array: np.ndarray) -> str:
    """VTK DataArray ``type`` attribute for a numpy array's dtype."""
    key = str(array.dtype)
    try:
        return DTYPE_TO_VTK_TYPE[key]
    except KeyError:
        raise TypeError(f"dtype {array.dtype} is not representable in VTK XML") from None


def encode_data_array(
    parent: ET.Element,
    name: str,
    array: np.ndarray,
    binary: bool,
    num_components: int | None = None,
) -> ET.Element:
    """Append a ``<DataArray>`` element holding ``array`` to ``parent``.

    ``array`` may be 1D (scalars) or 2D ``(N, C)`` (vectors); components are
    interleaved as VTK expects.
    """
    array = np.asarray(array)
    if array.ndim == 2:
        ncomp = array.shape[1]
        flat = np.ascontiguousarray(array).reshape(-1)
    elif array.ndim == 1:
        ncomp = 1
        flat = array
    else:
        raise ValueError(f"DataArray must be 1D or 2D, got shape {array.shape}")
    if num_components is not None:
        ncomp = num_components

    el = ET.SubElement(
        parent,
        "DataArray",
        {
            "type": vtk_type_for(flat),
            "Name": name,
            "NumberOfComponents": str(ncomp),
            "format": "binary" if binary else "ascii",
        },
    )
    flat = flat.astype(flat.dtype.newbyteorder("<"), copy=False)
    if binary:
        raw = flat.tobytes()
        header = np.uint64(len(raw)).tobytes()
        el.text = base64.b64encode(header + raw).decode("ascii")
    else:
        el.text = " ".join(repr(v) if flat.dtype.kind == "f" else str(v) for v in flat.tolist())
    return el


def decode_data_array(el: ET.Element, header_type: str = "UInt64") -> np.ndarray:
    """Decode a ``<DataArray>`` element to a numpy array.

    Returns a 1D array for single-component data, else ``(N, C)``.
    """
    vtk_type = el.get("type")
    if vtk_type not in VTK_TYPE_TO_DTYPE:
        raise ValueError(f"unsupported DataArray type {vtk_type!r}")
    dtype = VTK_TYPE_TO_DTYPE[vtk_type]
    ncomp = int(el.get("NumberOfComponents", "1"))
    fmt = el.get("format", "ascii")
    text = (el.text or "").strip()

    if fmt == "ascii":
        flat = _from_ascii(text, dtype)
    elif fmt == "binary":
        blob = base64.b64decode(text)
        hdtype = np.dtype("<u8") if header_type == "UInt64" else np.dtype("<u4")
        nbytes = int(np.frombuffer(blob[: hdtype.itemsize], dtype=hdtype)[0])
        payload = blob[hdtype.itemsize : hdtype.itemsize + nbytes]
        flat = np.frombuffer(payload, dtype=dtype).copy()
    else:
        raise ValueError(f"unsupported DataArray format {fmt!r} (appended data not implemented)")

    if ncomp > 1:
        flat = flat.reshape(-1, ncomp)
    return flat


def _from_ascii(text: str, dtype: np.dtype) -> np.ndarray:
    if not text:
        return np.empty(0, dtype=dtype)
    return np.array(text.split(), dtype=dtype)
