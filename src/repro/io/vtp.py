"""VTK XML PolyData (.vtp) read/write for point clouds.

The sampler's output — the surviving points' positions and scalar values —
is stored as a ``.vtp`` point cloud with one vertex cell per point, which is
how the paper's pipeline hands sampled data to the reconstructors.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np

from repro.io.common import decode_data_array, encode_data_array

__all__ = ["write_vtp", "read_vtp"]


def write_vtp(
    path: str | Path,
    points: np.ndarray,
    point_data: dict[str, np.ndarray] | None = None,
    binary: bool = True,
) -> None:
    """Write an ``(N, 3)`` point cloud with per-point arrays as ``.vtp``.

    Each point becomes a VTK vertex cell so the file renders directly.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    n = points.shape[0]
    point_data = point_data or {}
    for name, arr in point_data.items():
        if np.asarray(arr).shape[0] != n:
            raise ValueError(f"point_data[{name!r}] has {np.asarray(arr).shape[0]} entries for {n} points")

    root = ET.Element(
        "VTKFile",
        {
            "type": "PolyData",
            "version": "1.0",
            "byte_order": "LittleEndian",
            "header_type": "UInt64",
        },
    )
    poly = ET.SubElement(root, "PolyData")
    piece = ET.SubElement(
        poly,
        "Piece",
        {
            "NumberOfPoints": str(n),
            "NumberOfVerts": str(n),
            "NumberOfLines": "0",
            "NumberOfStrips": "0",
            "NumberOfPolys": "0",
        },
    )

    pd = ET.SubElement(piece, "PointData")
    if point_data:
        pd.set("Scalars", next(iter(point_data)))
    for name, arr in point_data.items():
        encode_data_array(pd, name, np.asarray(arr), binary=binary)

    pts_el = ET.SubElement(piece, "Points")
    encode_data_array(pts_el, "Points", points, binary=binary, num_components=3)

    verts = ET.SubElement(piece, "Verts")
    encode_data_array(verts, "connectivity", np.arange(n, dtype=np.int64), binary=binary)
    encode_data_array(verts, "offsets", np.arange(1, n + 1, dtype=np.int64), binary=binary)

    ET.indent(root)
    ET.ElementTree(root).write(str(path), xml_declaration=True, encoding="utf-8")


def read_vtp(path: str | Path) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Read a ``.vtp`` point cloud: returns ``(points, point_data)``."""
    tree = ET.parse(str(path))
    root = tree.getroot()
    if root.tag != "VTKFile" or root.get("type") != "PolyData":
        raise ValueError(f"{path}: not a VTK XML PolyData file")
    header_type = root.get("header_type", "UInt32")

    piece = root.find("PolyData/Piece")
    if piece is None:
        raise ValueError(f"{path}: missing <Piece> element")

    pts_el = piece.find("Points/DataArray")
    if pts_el is None:
        raise ValueError(f"{path}: missing Points DataArray")
    points = np.asarray(decode_data_array(pts_el, header_type=header_type), dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(-1, 3)

    point_data: dict[str, np.ndarray] = {}
    pd = piece.find("PointData")
    if pd is not None:
        for el in pd.findall("DataArray"):
            name = el.get("Name", f"array{len(point_data)}")
            point_data[name] = decode_data_array(el, header_type=header_type)
    return points, point_data
