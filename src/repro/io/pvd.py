"""ParaView data collection (.pvd) time-series index files.

A ``.pvd`` file lists per-timestep dataset files so ParaView can animate a
campaign.  The in situ writer emits one alongside the per-timestep ``.vtp``
clouds; reconstruction drivers can emit one over their ``.vti`` outputs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

__all__ = ["write_pvd", "read_pvd"]


def write_pvd(path: str | Path, entries: list[tuple[float, str]]) -> None:
    """Write a collection index.

    Parameters
    ----------
    path:
        Output ``.pvd`` path.
    entries:
        ``(timestep, file)`` pairs; files are stored as given (keep them
        relative to the ``.pvd`` for a relocatable campaign directory).
    """
    if not entries:
        raise ValueError("a .pvd collection needs at least one entry")
    root = ET.Element(
        "VTKFile",
        {"type": "Collection", "version": "0.1", "byte_order": "LittleEndian"},
    )
    coll = ET.SubElement(root, "Collection")
    for timestep, filename in entries:
        ET.SubElement(
            coll,
            "DataSet",
            {"timestep": repr(float(timestep)), "group": "", "part": "0", "file": str(filename)},
        )
    ET.indent(root)
    ET.ElementTree(root).write(str(path), xml_declaration=True, encoding="utf-8")


def read_pvd(path: str | Path) -> list[tuple[float, str]]:
    """Read a collection index back to ``(timestep, file)`` pairs."""
    tree = ET.parse(str(path))
    root = tree.getroot()
    if root.tag != "VTKFile" or root.get("type") != "Collection":
        raise ValueError(f"{path}: not a VTK Collection (.pvd) file")
    out: list[tuple[float, str]] = []
    for el in root.findall("Collection/DataSet"):
        out.append((float(el.get("timestep", "0")), el.get("file", "")))
    return out
