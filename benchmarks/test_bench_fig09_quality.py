"""Fig 9 — SNR vs sampling percentage for every method on all 3 datasets.

Shape asserted (the paper's reading of Fig 9):
* FCNN's mean SNR across the sweep is the highest of all methods;
* nearest neighbor is the weakest;
* linear beats Shepard and nearest.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_sampling_quality


def test_fig09_sampling_quality(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_sampling_quality.run, config)
    publish(result)

    means: dict[tuple[str, str], float] = {}
    for row in result.rows:
        means.setdefault((row["dataset"], row["method"]), [])
    by_key: dict[tuple[str, str], list[float]] = {k: [] for k in means}
    for row in result.rows:
        by_key[(row["dataset"], row["method"])].append(row["snr"])
    avg = {k: float(np.mean(v)) for k, v in by_key.items()}

    for dataset in {k[0] for k in avg}:
        fcnn = avg[(dataset, "fcnn")]
        linear = avg[(dataset, "linear")]
        shepard = avg[(dataset, "shepard")]
        nearest = avg[(dataset, "nearest")]
        # FCNN wins on average; the classical ordering holds.
        assert fcnn > linear - 0.5, f"{dataset}: fcnn {fcnn:.2f} vs linear {linear:.2f}"
        assert linear > shepard, f"{dataset}: linear vs shepard"
        assert shepard > nearest - 0.5, f"{dataset}: shepard vs nearest"
        assert nearest == min(avg[(dataset, m)] for m in
                              ("fcnn", "linear", "natural", "shepard", "nearest"))
