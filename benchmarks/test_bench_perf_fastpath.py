"""Fast-path benchmark — slow path vs workspace fast path (``BENCH_perf``).

Three configurations of the same FCNN pipeline run on one hurricane
field/sample pair:

* ``slow``   — the pre-PR execution model: ``fast_path=False`` (fresh
  temporaries in every Dense/ReLU/Adam step, full N x 23 feature matrix
  materialized per predict call) and ``cache_geometry=False`` (kd-tree
  rebuilt per call).
* ``fast64`` — the default fast path: workspace-reuse kernels, chunked
  inference with a reused feature buffer, cached geometry.  Numerics are
  **bit-identical** to ``slow`` (asserted below, strictly).
* ``fast32`` — ``fast64`` plus the opt-in ``dtype_policy="float32"``
  (float32 compute, float64 loss/SNR accumulation).  Value-approximate,
  not bit-identical — this row is the headline-throughput configuration.

Measured quantities (the paper's systems claims, Fig 10 / Table I):

* mean ``train.epoch`` wall seconds over the run's epochs, and
* full-grid reconstruction seconds (mean over ``REPEATS`` calls — the
  paper reconstructs every timestep from one sample geometry, which is
  what lets the geometry cache amortize).

``publish()`` writes ``results/BENCH_perf.json``; the ``slow`` and
``fast64`` runs additionally leave :mod:`repro.obs` run records under
``results/obs_perf/{slow,fast}`` so CI can gate with::

    repro obs report benchmarks/results/obs_perf/slow \
        --diff benchmarks/results/obs_perf/fast --fail-on-regression

(the fast path must never be a >20% span regression over the slow path).

Speed assertions are *soft* on the ``quick`` profile (tiny sizes measure
noise); bit-identity assertions are strict on every profile.
"""

import shutil
import time
from contextlib import nullcontext

import numpy as np
import pytest

from conftest import RESULTS_DIR, publish
from repro.core import FCNNReconstructor
from repro.datasets import HurricaneDataset
from repro.experiments.runner import ExperimentResult
from repro.obs import RunRecorder

#: grid dims per --bench-profile (queries scale the reconstruction side)
SIZES = {"quick": (16, 16, 8), "bench": (48, 48, 22), "paper": (96, 96, 48)}
#: training epochs per profile (epoch wall time is averaged over these)
EPOCHS = {"quick": 3, "bench": 8, "paper": 20}
#: reconstruction repeats — models per-timestep reconstruction reuse
REPEATS = {"quick": 2, "bench": 3, "paper": 5}

FRACTION = 0.01
HIDDEN = (128, 64, 32, 16)
OBS_DIRS = {"slow": RESULTS_DIR / "obs_perf" / "slow", "fast64": RESULTS_DIR / "obs_perf" / "fast"}


def _run_config(name, field, sample, profile):
    """Train + repeatedly reconstruct one configuration; return measurements."""
    fast = name != "slow"
    recon = FCNNReconstructor(
        hidden_layers=HIDDEN,
        batch_size=4096,
        seed=0,
        fast_path=fast,
        dtype_policy="float32" if name == "fast32" else "float64",
    )
    recon.extractor.cache_geometry = fast

    obs_dir = OBS_DIRS.get(name)
    if obs_dir is not None:
        shutil.rmtree(obs_dir, ignore_errors=True)
    recorder = (
        RunRecorder(obs_dir, meta={"config": name, "profile": profile})
        if obs_dir is not None
        else nullcontext()
    )
    epochs, repeats = EPOCHS[profile], REPEATS[profile]
    with recorder:
        t0 = time.perf_counter()
        history = recon.train(field, sample, epochs=epochs)
        train_s = time.perf_counter() - t0

        recon.reconstruct(sample)  # warm caches outside the timed region
        t0 = time.perf_counter()
        for _ in range(repeats):
            volume = recon.reconstruct(sample)
        recon_s = (time.perf_counter() - t0) / repeats
    return {
        "config": name,
        "train_s": train_s,
        "epoch_s": train_s / epochs,
        "recon_s": recon_s,
        "losses": list(history.train_loss),
        "volume": volume,
    }


def test_perf_fastpath(benchmark, bench_profile):
    from repro.sampling import MultiCriteriaSampler

    profile = bench_profile
    grid = HurricaneDataset.default_grid().with_resolution(SIZES[profile])
    field = HurricaneDataset(grid=grid).field(t=0)
    sample = MultiCriteriaSampler(seed=0).sample(field, FRACTION)

    def run():
        return {name: _run_config(name, field, sample, profile) for name in ("slow", "fast64", "fast32")}

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    slow, fast64, fast32 = runs["slow"], runs["fast64"], runs["fast32"]

    # --- bit-exactness (strict on every profile) --------------------------
    # The default fast path must be indistinguishable from the slow path:
    # identical per-epoch losses and an identical reconstructed volume.
    assert slow["losses"] == fast64["losses"]
    assert np.array_equal(slow["volume"], fast64["volume"])
    # float32 policy is value-approximate only.
    rel = np.max(np.abs(fast32["volume"] - slow["volume"])) / max(
        np.max(np.abs(slow["volume"])), 1e-12
    )
    assert rel < 1e-3, f"float32 policy drifted: rel err {rel:.2e}"

    rows = []
    for name in ("slow", "fast64", "fast32"):
        r = runs[name]
        rows.append(
            {
                "config": name,
                "epoch_s": round(r["epoch_s"], 4),
                "train_speedup": round(slow["epoch_s"] / r["epoch_s"], 2),
                "recon_s": round(r["recon_s"], 4),
                "recon_speedup": round(slow["recon_s"] / r["recon_s"], 2),
                "bit_identical": name != "fast32",
            }
        )
    result = ExperimentResult(
        experiment="perf",
        rows=rows,
        series={
            "epoch_s": {r["config"]: r["epoch_s"] for r in rows},
            "recon_s": {r["config"]: r["recon_s"] for r in rows},
        },
        notes={
            "profile": profile,
            "dims": "x".join(str(d) for d in SIZES[profile]),
            "fraction": FRACTION,
            "epochs": EPOCHS[profile],
            "recon_repeats": REPEATS[profile],
            "hidden_layers": HIDDEN,
            "targets": "train.epoch >= 2x, full-grid reconstruction >= 3x (fast32 row)",
        },
    )
    publish(result)

    # --- speed (soft on quick: tiny sizes time noise, not kernels) --------
    if profile != "quick":
        assert fast64["epoch_s"] <= slow["epoch_s"] * 1.2, "fast64 regressed training"
        assert fast64["recon_s"] <= slow["recon_s"] * 1.2, "fast64 regressed reconstruction"
