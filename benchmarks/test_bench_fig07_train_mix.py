"""Fig 7 — training sampling-percentage mix (1% / 5% / 1%+5%).

Shape asserted (the paper's Fig 7 reading):
* the 1%-trained model beats the 5%-trained model at the sparsest rate;
* the 5%-trained model beats the 1%-trained model at the densest rate;
* the 1%+5% union model is within reach of the better specialist at both
  ends (good at both ends of the sampling spectrum — the adopted design).
"""

from conftest import publish, run_once
from repro.experiments import exp_train_mix


def test_fig07_train_mix(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_train_mix.run, config)
    publish(result)

    lo, hi = config.train_fractions[0], config.train_fractions[-1]
    series = {k: dict(v) for k, v in result.series.items()}
    m_lo = series[f"train@{lo:g}"]
    m_hi = series[f"train@{hi:g}"]
    m_mix = series[f"train@{lo:g}+{hi:g}"]

    sparsest = min(m_lo)
    densest = max(m_lo)

    assert m_lo[sparsest] > m_hi[sparsest], "1%-model must win at sparse rates"
    assert m_hi[densest] > m_lo[densest], "5%-model must win at dense rates"
    # The union model stays close to the specialist at each end...
    assert m_mix[sparsest] > m_hi[sparsest]
    assert m_mix[densest] > m_lo[densest]
    # ...and has the best (or tied-best) overall average.
    avg = lambda m: sum(m.values()) / len(m)
    assert avg(m_mix) >= max(avg(m_lo), avg(m_hi)) - 0.5
