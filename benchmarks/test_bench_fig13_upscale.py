"""Fig 13 — volume upscaling across resolutions and spatial domains.

Shape asserted:
* the low-res-pretrained, 10-epoch-fine-tuned model beats linear on
  average on the 2x-per-axis, domain-shifted high-resolution grid;
* it lands within reach of the fully-high-res-trained reference model —
  the paper's "knowledge transfers across resolution and domain" claim.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_upscaling


def test_fig13_upscaling(benchmark, bench_config):
    # The high-res grid is 8x the points; keep the bench minutes-scale.
    config = bench_config()
    config = config.scaled(
        dims=(28, 28, 10),
        epochs=max(20, config.epochs // 2),
        test_fractions=(0.002, 0.005, 0.01, 0.03, 0.05),
    )
    result = run_once(benchmark, exp_upscaling.run, config)
    publish(result)

    series = {k: dict(v) for k, v in result.series.items()}
    # Assert in the aggressive-sampling regime the paper targets (<= 1%);
    # above ~2% the scaled-down FCNN's quality ceiling lets linear pull
    # ahead (crossover shift documented in EXPERIMENTS.md).  The printed
    # sweep still covers the full range.
    fracs = [f for f in sorted(series["linear"]) if f <= 0.01]
    assert fracs, "need at least one aggressive test fraction"

    def avg(name):
        return float(np.mean([series[name][f] for f in fracs]))

    linear, full_hi, ft = avg("linear"), avg("fcnn-full@hi"), avg("fcnn-ft lo->hi")
    assert ft > linear - 0.3, f"fine-tuned lo->hi {ft:.2f} must beat linear {linear:.2f}"
    assert full_hi > linear - 0.3, f"full hi-res model {full_hi:.2f} must beat linear {linear:.2f}"
    # Transfer lands in the neighbourhood of the fully-trained reference.
    assert ft > full_hi - 3.0, f"transfer gap too large: ft {ft:.2f} vs full {full_hi:.2f}"
    # At the single most aggressive rate, both FCNNs must win outright.
    f0 = fracs[0]
    assert series["fcnn-ft lo->hi"][f0] > series["linear"][f0]
