"""Fig 10 — reconstruction time vs sampling percentage.

Shape asserted:
* the trained FCNN's reconstruction time is ~flat across sampling rates
  (constant time with respect to sampling percentage);
* naive sequential Delaunay is far slower than the vectorized build (the
  paper's Python-vs-CGAL gap);
* nearest neighbor is the fastest rule-based method.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_sampling_time


def test_fig10_sampling_time(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_sampling_time.run, config)
    publish(result)

    series = {k: dict(v) for k, v in result.series.items()}
    fracs = sorted(series["fcnn"])

    # FCNN: near-constant time across the sweep (allow kd-tree noise: the
    # slowest fraction may cost at most ~3x the fastest).
    fcnn_times = [series["fcnn"][f] for f in fracs]
    assert max(fcnn_times) < 3.0 * max(min(fcnn_times), 1e-3)

    # Naive sequential linear is dramatically slower than vectorized.
    naive = np.mean([series["linear-naive"][f] for f in fracs])
    fast = np.mean([series["linear"][f] for f in fracs])
    assert naive > 5.0 * fast, f"naive {naive:.3f}s vs vectorized {fast:.3f}s"

    # Nearest is the cheapest rule-based method on average.
    nearest = np.mean([series["nearest"][f] for f in fracs])
    for method in ("linear", "linear-naive", "natural", "shepard"):
        assert nearest <= np.mean([series[method][f] for f in fracs]) + 1e-3
