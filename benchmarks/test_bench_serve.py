"""Reconstruction-as-a-service replay benchmark (``BENCH_serve``).

A populated model registry (pretrained base + per-timestep batched
fine-tunes, the ``repro serve build`` path) is hammered with a
Zipf-skewed synthetic request stream through three serving strategies:

* ``naive``     — one-request-one-reconstruction: per request, load the
  key's weights/values from the cold tier, restore them into a model and
  reconstruct the **full grid**.  No caches, no coalescing, no fusion —
  the offline per-timestep path pressed into serving duty.  This is the
  gate's denominator (measured over a prefix of the trace; it is
  per-request stationary and a full million would take hours).
* ``unbatched`` — a :class:`repro.serve.ReconstructionServer` degraded to
  ``max_batch=1, cache_slots=1`` (the ``repro replay --no-batching``
  config CI diffs against).
* ``batched``   — the tentpole config: request coalescing, cross-timestep
  (K, n, m) stacking through :mod:`repro.nn.batched`, hot-LRU model
  registry and slot-ring result cache.

The batched replay fires **>= 1M requests on the bench profile** and the
headline gate is ``batched_rps >= 5 x naive_rps`` — on one core: the
server's dispatcher and the replay loop share the process, so the win is
algorithmic (caching + fusion), not parallelism.

Before any timing, every registry key is served once and the assembled
volume is byte-compared against the offline campaign sink
(:func:`repro.perf.campaign.make_reconstruction_sink` — ``run_campaign``'s
emit path) over the same weights: the serving layer must be a transport,
never a numeric.

``publish()`` writes ``results/BENCH_serve.json`` (p50/p99 latency, rps,
batch occupancy, cache/registry hit rates from the :mod:`repro.obs`
counters) and a copy lands at the repo root as the commit's serving perf
baseline.  The server runs leave obs records under
``results/obs_serve/<config>`` so CI can gate with::

    repro obs report benchmarks/results/obs_serve/unbatched \
        --diff benchmarks/results/obs_serve/batched \
        --only 'serve.*' --fail-on-regression
"""

import os
import shutil
import time
from pathlib import Path

from conftest import RESULTS_DIR, publish
from repro.experiments.runner import ExperimentResult
from repro.obs import RunRecorder, load_run
from repro.perf.campaign import make_reconstruction_sink
from repro.serve import (
    ReconstructionServer,
    ServeRequest,
    ServerConfig,
    build_registry,
    naive_throughput,
    replay,
    synthetic_trace,
)

#: per --bench-profile scale (grid, registry depth, request volume)
SIZES = {"quick": (10, 10, 5), "bench": (16, 16, 8), "paper": (24, 24, 12)}
EPOCHS = {"quick": 4, "bench": 12, "paper": 30}
TIMESTEPS = {
    "quick": (0, 1, 2),
    "bench": (0, 1, 2, 3, 4, 5),
    "paper": (0, 1, 2, 3, 4, 5, 6, 7),
}
HIDDEN = {"quick": (16, 8), "bench": (32, 16), "paper": (64, 32, 16)}
REQUESTS = {"quick": 20_000, "bench": 1_000_000, "paper": 2_000_000}

FRACTION = 0.05
TENANTS = tuple(f"tenant-{i}" for i in range(4))
NAIVE_LIMIT = 400          #: naive-baseline prefix (per-request stationary)
SKEW = 1.1
CONFIGS = ("naive", "unbatched", "batched")
OBS_DIRS = {name: RESULTS_DIR / "obs_serve" / name for name in ("unbatched", "batched")}
REPO_ROOT = Path(__file__).resolve().parent.parent


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _assert_served_bits_match_offline(registry) -> None:
    """Every key's served volume == the offline campaign sink's, bytewise."""
    by_ns: dict = {}
    for key in registry.keys():
        by_ns.setdefault(key.namespace_id, []).append(key)
    with ReconstructionServer(registry, ServerConfig()) as server:
        for ns_id, keys in by_ns.items():
            ns = registry.namespace(keys[0].dataset, keys[0].fraction)
            sink = make_reconstruction_sink(
                ns.geometry, {"fcnn": ns.base.clone()}, warm_pool=False
            )
            try:
                for key in keys:
                    weights, values = registry.hot(key)
                    slot = sink.publish(key.timestep, values, {"fcnn": weights})
                    offline, _ = sink.reconstruct(slot, "fcnn")
                    served = server.serve(ServeRequest(key=key), timeout=120)
                    assert served.assemble().tobytes() == offline.tobytes(), (
                        f"served {key} is not bit-identical to the offline sink"
                    )
            finally:
                sink.close()


def _server_run(registry, trace, *, name, profile, batched):
    obs_dir = OBS_DIRS[name]
    shutil.rmtree(obs_dir, ignore_errors=True)
    config = ServerConfig(
        max_batch=8 if batched else 1,
        cache_slots=16 if batched else 1,
    )
    with RunRecorder(obs_dir, meta={"config": name, "profile": profile}):
        with ReconstructionServer(registry, config) as server:
            stats = replay(server, trace)
    counters = load_run(obs_dir).metrics["counters"]
    return {"stats": stats, "counters": counters}


def test_serve_replay(benchmark, bench_profile, tmp_path):
    profile = bench_profile
    num_requests = REQUESTS[profile]
    registry = build_registry(
        tmp_path / "registry",
        dims=SIZES[profile],
        fraction=FRACTION,
        timesteps=TIMESTEPS[profile],
        epochs=EPOCHS[profile],
        finetune_epochs=4,
        hidden=HIDDEN[profile],
        train_fractions=(0.01, FRACTION),
        seed=0,
    )
    # Correctness precondition: serving is a transport, not a numeric.
    _assert_served_bits_match_offline(registry)

    trace = synthetic_trace(
        registry.keys(),
        num_requests,
        tenants=TENANTS,
        seed=0,
        skew=SKEW,
        chunk_fraction=0.05,
    )
    # The unbatched server replays a prefix: same per-request regime, and
    # the full million through a cache-starved server adds nothing but wall
    # clock.  Its rps row is informational; the gate is vs `naive`.
    unbatched_trace = synthetic_trace(
        registry.keys(),
        min(num_requests, 100_000),
        tenants=TENANTS,
        seed=0,
        skew=SKEW,
        chunk_fraction=0.05,
    )

    def run():
        out = {}
        naive_rps, naive_s = naive_throughput(registry, trace, limit=NAIVE_LIMIT)
        out["naive"] = {"rps": naive_rps, "duration_s": naive_s}
        out["unbatched"] = _server_run(
            registry, unbatched_trace, name="unbatched", profile=profile, batched=False
        )
        out["batched"] = _server_run(
            registry, trace, name="batched", profile=profile, batched=True
        )
        return out

    # One warmup round: first-touch of the cold mmaps, the fused engine's
    # slab allocations and the kd-tree memo would otherwise bill to the
    # measured replay.
    runs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    naive = runs["naive"]
    batched, unbatched = runs["batched"]["stats"], runs["unbatched"]["stats"]
    counters = runs["batched"]["counters"]

    # --- sanity on the measured replay ------------------------------------
    assert batched.requests == num_requests
    assert batched.statuses.get("ok", 0) == num_requests  # nothing shed/errored
    assert batched.batch_occupancy >= 1.0
    assert 0.0 < batched.cache_hit_rate <= 1.0
    assert counters["serve.requests"] == num_requests
    assert counters["serve.cache.hits"] == batched.server["hits"]

    speedup = batched.rps / naive["rps"]
    unbatched_speedup = unbatched.rps / naive["rps"]

    rows = [
        {
            "config": "naive",
            "requests": NAIVE_LIMIT,
            "rps": round(naive["rps"], 1),
            "p50_ms": None,
            "p99_ms": None,
            "batch_occupancy": None,
            "cache_hit_rate": None,
            "registry_hit_rate": None,
            "speedup_vs_naive": 1.0,
        }
    ]
    for name, stats, speed in (
        ("unbatched", unbatched, unbatched_speedup),
        ("batched", batched, speedup),
    ):
        rows.append(
            {
                "config": name,
                "requests": stats.requests,
                "rps": round(stats.rps, 1),
                "p50_ms": round(stats.p50_ms, 4),
                "p99_ms": round(stats.p99_ms, 4),
                "batch_occupancy": round(stats.batch_occupancy, 3),
                "cache_hit_rate": round(stats.cache_hit_rate, 4),
                "registry_hit_rate": round(stats.registry_hit_rate, 4),
                "speedup_vs_naive": round(speed, 1),
            }
        )
    result = ExperimentResult(
        experiment="serve",
        rows=rows,
        series={"rps": {r["config"]: r["rps"] for r in rows}},
        notes={
            "profile": profile,
            "dims": "x".join(str(d) for d in SIZES[profile]),
            "registry_keys": len(registry),
            "requests": num_requests,
            "tenants": len(TENANTS),
            "zipf_skew": SKEW,
            "chunk_fraction": 0.05,
            "effective_cores": _effective_cores(),
            "served_bits_match_offline_sink": True,
            "serve_evals": batched.server["evals"],
            "serve_coalesced": batched.server["coalesced"],
            "mean_stack_k": round(batched.mean_stack_k, 3),
            "speedup_vs_naive": round(speedup, 2),
            "target": "batched rps >= 5x naive one-request-one-reconstruction rps",
        },
    )
    publish(result)
    # the commit's serving perf baseline lives at the repo root
    shutil.copyfile(RESULTS_DIR / "BENCH_serve.json", REPO_ROOT / "BENCH_serve.json")

    # --- gates (off-quick: quick sizes measure harness noise) -------------
    if profile != "quick":
        assert num_requests >= 1_000_000
        assert speedup >= 5.0, (
            f"batched serving {speedup:.1f}x naive < 5x "
            f"({batched.rps:.0f} vs {naive['rps']:.0f} rps on "
            f"{_effective_cores()} core(s))"
        )
