"""Table I — full-training time per dataset and resolution.

Shape asserted: training time scales with the number of training rows, so
the 2x-per-axis upscaled Hurricane run costs several times its base run
(the paper: 533s -> 3737s, a ~7x jump for 8x the points).
"""

from conftest import publish, run_once
from repro.experiments import exp_training_time


def test_tab1_training_time(benchmark, bench_config):
    # Timing shape survives a reduced epoch budget; keep the bench short.
    config = bench_config()
    config = config.scaled(dims=(28, 28, 10), epochs=max(10, config.epochs // 5))
    result = run_once(benchmark, exp_training_time.run, config)
    publish(result)

    rows = {(r["dataset"], r["resolution"]): r for r in result.rows}
    assert len(result.rows) == 4

    hurricane = [r for r in result.rows if r["dataset"] == "hurricane"]
    base = min(hurricane, key=lambda r: r["train_rows"])
    upscaled = max(hurricane, key=lambda r: r["train_rows"])
    assert upscaled["train_rows"] > 6 * base["train_rows"]
    assert upscaled["train_seconds"] > 3.0 * base["train_seconds"], (
        f"upscaled {upscaled['train_seconds']:.1f}s vs base {base['train_seconds']:.1f}s"
    )

    # More training rows must never be dramatically cheaper.
    ordered = sorted(result.rows, key=lambda r: r["train_rows"])
    for small, large in zip(ordered, ordered[1:]):
        assert large["train_seconds"] > 0.5 * small["train_seconds"]
