"""Extension bench — sampling + reconstruction vs compression at equal storage.

Shape asserted (the known result in the reduction literature the paper
cites via [24]): on a smooth field, whole-field error-bounded compression
wins pointwise SNR at equal bytes; among the sampling-based methods the
FCNN remains the best reconstructor; and the compressor respects its
byte budget and error bound.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_compression


def test_ext_sampling_vs_compression(benchmark, bench_config):
    config = bench_config()
    config = config.scaled(test_fractions=(0.005, 0.01, 0.03))
    result = run_once(benchmark, exp_compression.run, config)
    publish(result)

    for row in result.rows:
        # Budget respected (allowing the fixed header's slack on tiny budgets).
        assert row["compressed_bytes"] <= row["budget_bytes"] + 64
        # FCNN leads the sampling-based path.
        assert row["snr_fcnn"] > row["snr_linear"] - 0.5

    # Compression wins decisively once the budget affords a usable error
    # bound (>= 1% here).  Below that the bound balloons and the learned
    # reconstruction from exact samples competes or wins — the measured
    # crossover this experiment exists to expose (see EXPERIMENTS.md).
    comp = dict(result.series["snr_compression"])
    fcnn = dict(result.series["snr_fcnn"])
    fracs = sorted(comp)
    dense = [f for f in fracs if f >= 0.01]
    assert dense, "need at least one >= 1% budget row"
    for f in dense:
        assert comp[f] > fcnn[f], (
            f"{f}: compression {comp[f]:.1f} vs fcnn {fcnn[f]:.1f}"
        )
    # More budget -> tighter achievable bound -> better compression SNR.
    assert comp[fracs[-1]] > comp[fracs[0]]
