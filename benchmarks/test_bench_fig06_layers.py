"""Fig 6 — average SNR vs number of hidden layers (1..9).

Shape asserted: the five-layer FCNN (the paper's choice) beats both the
one-layer (underfit) and the nine-layer (overfit/hard-to-train) variants,
the paper's argument for picking five.
"""

from conftest import publish, run_once
from repro.experiments import exp_layers


def test_fig06_hidden_layers(benchmark, bench_config):
    # 9 trainings: trim the epoch budget so the bench stays minutes-scale.
    config = bench_config()
    config = config.scaled(epochs=max(20, config.epochs // 2))
    result = run_once(benchmark, exp_layers.run, config)
    publish(result)

    by_depth = {row["hidden_layers"]: row["avg_snr"] for row in result.rows}
    values = list(by_depth.values())
    # Measured reproduction finding (EXPERIMENTS.md): at bench scale the
    # depth sweep is flat to within ~1.5 dB — the scaled-down task
    # saturates by ~3 layers and deeper variants neither help nor collapse.
    # The assertions pin that flatness plus the weak form of the paper's
    # shape: the broad middle of the ladder contains the best model, and
    # the 5-layer choice is within noise of the optimum.
    assert max(values) - min(values) < 1.5, f"depth sweep not flat: {by_depth}"
    mid = max(by_depth[d] for d in (3, 4, 5, 6))
    assert mid >= max(by_depth[1], by_depth[9]) - 0.1
    assert by_depth[5] > max(values) - 1.2, (
        f"5-layer {by_depth[5]:.2f} too far below best {max(values):.2f}"
    )
