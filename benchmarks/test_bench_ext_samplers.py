"""Extension bench — sampling-strategy ablation at an aggressive rate.

Shape asserted:
* the paper's multi-criteria sampler is at least competitive with plain
  random sampling for both reconstructors (its selling point in Sec II);
* the FCNN is sampling-method agnostic in the strong sense: it beats (or
  matches) linear under *every* sampling strategy at the aggressive rate.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_samplers


def test_ext_sampler_ablation(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_samplers.run, config, fraction=0.01)
    publish(result)

    fcnn = dict(result.series["fcnn"])
    linear = dict(result.series["linear"])

    assert fcnn["multicriteria"] > fcnn["random"] - 1.0
    # FCNN >= linear under every sampling strategy at 1%.
    for name in fcnn:
        assert fcnn[name] > linear[name] - 0.5, (
            f"{name}: fcnn {fcnn[name]:.2f} vs linear {linear[name]:.2f}"
        )
    # And strictly wins for the paper's sampler.
    assert fcnn["multicriteria"] > linear["multicriteria"]
