"""Fig 5's fine-tuning protocols — Case 1 (full, ~10 ep) vs Case 2 (last-2).

Shape asserted:
* both protocols improve on the un-fine-tuned pretrained model;
* Case 2 needs a much larger epoch budget to approach Case 1 (the paper:
  ~300-500 epochs vs ~10) — its small-budget point is below its
  large-budget point;
* the Case-2 partial checkpoint is much smaller than a full checkpoint
  (the storage trade-off the paper describes).
"""

from conftest import publish, run_once
from repro.experiments import exp_finetune_cases


def test_fig05_finetune_cases(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_finetune_cases.run, config)
    publish(result)

    rows = result.rows
    base = next(r for r in rows if r["case"] == "no-finetune")["snr"]
    case1 = next(r for r in rows if r["case"] == "case1-full")["snr"]
    case2 = sorted(
        (r for r in rows if r["case"] == "case2-last2"), key=lambda r: r["epochs"]
    )

    assert case1 > base, "Case 1 fine-tuning must improve on the pretrained model"
    assert case2[-1]["snr"] > base, "Case 2 (full budget) must improve on the pretrained model"
    # Case 2 converges toward Case 1 with budget.
    assert case2[-1]["snr"] >= case2[0]["snr"] - 0.3
    assert case2[-1]["snr"] > case1 - 3.0, "Case 2 at full budget must approach Case 1"

    # Storage: last-2-layer checkpoint far smaller than the full model.
    assert result.notes["partial_checkpoint_bytes"] < 0.5 * result.notes["full_checkpoint_bytes"]
