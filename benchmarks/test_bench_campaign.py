"""Streaming campaign benchmark — pipelined scheduler vs serial loops (``BENCH_campaign``).

Three implementations of the same Fig 11-style rolling campaign
(pretrained FCNN, per-timestep fine-tune + full reconstruction) run over
identical timesteps:

* ``legacy``    — the pre-PR per-timestep loop: ``copy.deepcopy`` of the
  model, a fresh :class:`SampledField` every step (kd-tree, neighbor
  indices and void geometry recomputed from scratch), in-process serial
  reconstruction.
* ``serial``    — :meth:`ReconstructionPipeline.run_campaign` with
  ``pipeline=False, warm_pool=False``: shared campaign geometry and
  snapshot/restore instead of deepcopy, but no stage overlap and no
  worker pool.
* ``pipelined`` — ``pipeline=True, warm_pool=True``: the full streaming
  scheduler (prefetch / fine-tune / reconstruct overlapped) on the
  persistent shared-memory worker pool.

All three must produce **bit-identical** reconstructions and scores
(asserted strictly on every profile).  Measured quantities:

* ``end_to_end_speedup``   — legacy wall / pipelined wall (the ISSUE's
  headline: >= 2x on the bench profile on a multi-core host);
* ``overhead_speedup``     — the same ratio after subtracting fine-tune
  time (fine-tuning is strictly sequential in every implementation, so
  this isolates what the scheduler + caches actually optimize);
* stage occupancies from :class:`repro.perf.CampaignStats`.

``publish()`` writes ``results/BENCH_campaign.json`` and a copy lands at
the repo root (``BENCH_campaign.json``) as the commit's perf baseline.
The ``serial`` and ``pipelined`` runs leave :mod:`repro.obs` run records
under ``results/obs_campaign/{serial,pipelined}`` so CI can gate with::

    repro obs report benchmarks/results/obs_campaign/serial \
        --diff benchmarks/results/obs_campaign/pipelined --fail-on-regression

(pipelining must never be a >20% span regression over the serial path).

Speed assertions are hardware-honest: the >= 2x end-to-end gate only
applies off the ``quick`` profile on hosts with >= 2 effective cores
(a single core cannot overlap anything); bit-identity is strict always.
"""

import copy
import os
import shutil
import time
from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, publish
from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.experiments.runner import ExperimentResult
from repro.metrics import score_reconstruction
from repro.obs import RunRecorder
from repro.sampling import SampledField

#: grid dims per --bench-profile
SIZES = {"quick": (16, 16, 8), "bench": (36, 36, 18), "paper": (64, 64, 32)}
#: pretraining epochs (campaign fine-tuning always uses FINETUNE_EPOCHS)
EPOCHS = {"quick": 3, "bench": 8, "paper": 20}
#: the Fig 11-style timestep stream (>= 4 stored steps on every profile)
TIMESTEPS = {
    "quick": (0, 2, 4, 6),
    "bench": (0, 3, 6, 9, 12),
    "paper": (0, 2, 4, 6, 8, 10, 12, 14),
}
HIDDEN = {"quick": (32, 16), "bench": (64, 32, 16), "paper": (128, 64, 32, 16)}

FRACTION = 0.05
FINETUNE_EPOCHS = 2
OBS_DIRS = {
    "serial": RESULTS_DIR / "obs_campaign" / "serial",
    "pipelined": RESULTS_DIR / "obs_campaign" / "pipelined",
}
REPO_ROOT = Path(__file__).resolve().parent.parent


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _legacy_campaign(pipeline, base, timesteps):
    """The pre-PR per-timestep loop (deepcopy + cold geometry every step)."""
    model = copy.deepcopy(base)
    sample0 = pipeline.sample(pipeline.field(timesteps[0]), FRACTION)
    rows, volumes, finetune_s = [], [], 0.0
    for t in timesteps:
        fld = pipeline.field(t)
        train = [pipeline.sample(fld, f) for f in pipeline.train_fractions]
        history = model.fine_tune(fld, train, epochs=FINETUNE_EPOCHS, strategy="full")
        finetune_s += history.total_seconds
        # fresh SampledField per step: void geometry, kd-tree and neighbor
        # indices all recomputed — exactly what CampaignGeometry now amortizes
        sample = SampledField(
            grid=fld.grid,
            indices=sample0.indices.copy(),
            values=fld.values.ravel()[sample0.indices],
            fraction=FRACTION,
            timestep=t,
        )
        volume = model.reconstruct(sample)
        rows.append({"timestep": t, **score_reconstruction(fld.values, volume).as_dict()})
        volumes.append(volume)
    return {"rows": rows, "volumes": volumes, "finetune_s": finetune_s}


def _run_campaign(pipeline, base, timesteps, *, pipelined, obs_dir, profile):
    shutil.rmtree(obs_dir, ignore_errors=True)
    name = "pipelined" if pipelined else "serial"
    with RunRecorder(obs_dir, meta={"config": name, "profile": profile}):
        result = pipeline.run_campaign(
            base.clone(),
            timesteps,
            FRACTION,
            finetune_epochs=FINETUNE_EPOCHS,
            pipeline=pipelined,
            warm_pool=pipelined,
        )
    # keep only the deterministic score columns (the legacy loop has no
    # wall-clock column, and bit-identity implies zero degraded points)
    assert all(row["degraded_points"] == 0 for row in result.rows)
    drop = ("finetune_seconds", "degraded_points")
    rows = [{k: v for k, v in row.items() if k not in drop} for row in result.rows]
    return {
        "rows": rows,
        "volumes": result.reconstructions,
        "finetune_s": result.finetune_seconds,
        "stats": result.stats,
    }


def test_campaign_pipeline(benchmark, bench_profile):
    profile = bench_profile
    timesteps = TIMESTEPS[profile]
    data = make_dataset("combustion", dims=SIZES[profile], seed=0)
    pipeline = ReconstructionPipeline(
        data, train_fractions=(0.01, 0.05), keep_reconstructions=True
    )
    base = FCNNReconstructor(hidden_layers=HIDDEN[profile], batch_size=4096, seed=0)
    pipeline.train_fcnn(base, timestep=timesteps[0], epochs=EPOCHS[profile])

    def run():
        out = {}
        for name in ("legacy", "serial", "pipelined"):
            t0 = time.perf_counter()
            if name == "legacy":
                out[name] = _legacy_campaign(pipeline, base, timesteps)
            else:
                out[name] = _run_campaign(
                    pipeline,
                    base,
                    timesteps,
                    pipelined=name == "pipelined",
                    obs_dir=OBS_DIRS[name],
                    profile=profile,
                )
            out[name]["wall_s"] = time.perf_counter() - t0
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    legacy, serial, pipelined = runs["legacy"], runs["serial"], runs["pipelined"]

    # --- bit-exactness (strict on every profile) --------------------------
    # Scores are floats, so dict equality means bit-equal; volumes are
    # compared on raw bytes.  The scheduler, the weight deltas, the shared
    # geometry and the worker pool must all be invisible in the output.
    scores = [{k: v for k, v in row.items() if k != "timestep"} for row in legacy["rows"]]
    for name in ("serial", "pipelined"):
        assert runs[name]["rows"] == legacy["rows"], f"{name} scores drifted from legacy"
        for t, mine, theirs in zip(timesteps, runs[name]["volumes"], legacy["volumes"]):
            assert mine.tobytes() == theirs.tobytes(), f"{name} t={t} not bit-identical"
    assert len(legacy["volumes"]) == len(timesteps) >= 4
    assert all(np.isfinite(v).all() for v in legacy["volumes"])

    # --- speedups ---------------------------------------------------------
    end_to_end = legacy["wall_s"] / pipelined["wall_s"]
    serial_vs_pipelined = serial["wall_s"] / pipelined["wall_s"]
    overhead = {n: runs[n]["wall_s"] - runs[n]["finetune_s"] for n in runs}
    overhead_speedup = overhead["legacy"] / max(overhead["pipelined"], 1e-9)
    stats = pipelined["stats"]

    rows = []
    for name in ("legacy", "serial", "pipelined"):
        rows.append(
            {
                "config": name,
                "wall_s": round(runs[name]["wall_s"], 4),
                "finetune_s": round(runs[name]["finetune_s"], 4),
                "overhead_s": round(overhead[name], 4),
                "speedup_vs_legacy": round(legacy["wall_s"] / runs[name]["wall_s"], 2),
                "bit_identical": True,
                "mean_snr": round(float(np.mean([r["snr"] for r in scores])), 4),
            }
        )
    result = ExperimentResult(
        experiment="campaign",
        rows=rows,
        series={"wall_s": {r["config"]: r["wall_s"] for r in rows}},
        notes={
            "profile": profile,
            "dims": "x".join(str(d) for d in SIZES[profile]),
            "timesteps": list(timesteps),
            "fraction": FRACTION,
            "finetune_epochs": FINETUNE_EPOCHS,
            "hidden_layers": HIDDEN[profile],
            "effective_cores": _effective_cores(),
            "end_to_end_speedup": round(end_to_end, 3),
            "serial_vs_pipelined_speedup": round(serial_vs_pipelined, 3),
            "overhead_speedup": round(overhead_speedup, 3),
            "occupancy": {
                "prefetch": round(stats.occupancy("prefetch"), 3),
                "finetune": round(stats.occupancy("process"), 3),
                "reconstruct": round(stats.occupancy("emit"), 3),
            },
            "target": "end_to_end_speedup >= 2x on bench profile with >= 2 cores",
        },
    )
    publish(result)
    # the commit's campaign perf baseline lives at the repo root
    shutil.copyfile(RESULTS_DIR / "BENCH_campaign.json", REPO_ROOT / "BENCH_campaign.json")

    # --- speed (hardware-honest gates) ------------------------------------
    # A single core cannot overlap stages, and quick-profile sizes measure
    # harness noise — the hard >= 2x end-to-end gate needs both real cores
    # and real work.  The cache wins (geometry + snapshot vs deepcopy) must
    # show up everywhere off the quick profile.
    if profile != "quick":
        assert end_to_end >= 1.0, f"pipelined slower than legacy ({end_to_end:.2f}x)"
        if _effective_cores() >= 2:
            assert end_to_end >= 2.0, (
                f"end-to-end campaign speedup {end_to_end:.2f}x < 2x "
                f"on {_effective_cores()} cores"
            )
