"""Streaming campaign benchmark — batched fine-tune vs serial loops (``BENCH_campaign``).

Five implementations of the same Fig 11-style campaign (pretrained FCNN,
per-timestep fine-tune + full reconstruction) run over identical
timesteps:

* ``legacy``    — the pre-PR per-timestep loop: ``copy.deepcopy`` of the
  model, a fresh :class:`SampledField` every step (kd-tree, neighbor
  indices and void geometry recomputed from scratch), in-process serial
  reconstruction, Case-1 rolling fine-tune.
* ``serial``    — :meth:`ReconstructionPipeline.run_campaign` with
  ``pipeline=False, warm_pool=False``: shared campaign geometry and
  snapshot/restore instead of deepcopy, but no stage overlap and no
  worker pool.
* ``pipelined`` — ``pipeline=True, warm_pool=True``: the full streaming
  scheduler (prefetch / fine-tune / reconstruct overlapped) on the
  persistent shared-memory worker pool.
* ``batched-serial`` / ``batched`` — ``batched_finetune=True``: the
  fine-tune stage runs on the fused :mod:`repro.nn.batched` engine with
  the documented Case-2 fast path (``finetune_strategy="last"``; every
  timestep derives from the pretrained base — see docs/TRAINING.md).
  The ``-serial`` variant pins ``pipeline=False, warm_pool=False``; the
  headline config adds the streaming scheduler + warm pool on top.

Bit-identity is asserted strictly on every profile along two seams:

* ``legacy`` == ``serial`` == ``pipelined`` (the rolling trajectory —
  the batched engine must not perturb the serial single-model path);
* ``batched-serial`` == ``batched`` (the from-base trajectory is
  invariant to pipelining, the warm pool and fine-tune block size).

Measured quantities:

* ``end_to_end_speedup``   — legacy wall / batched wall (the ISSUE's
  headline: >= 2x on the bench profile, **single core included** — the
  win comes from fused stacked matmuls + the Case-2 frozen-prefix cache,
  not from overlap);
* ``pipelined_speedup``    — legacy wall / pipelined wall (the PR 5
  headline, still gated >= 2x on multi-core hosts);
* ``overhead_speedup``     — legacy/pipelined after subtracting
  fine-tune time (what the scheduler + caches alone optimize);
* stage occupancies from :class:`repro.perf.CampaignStats`.

``publish()`` writes ``results/BENCH_campaign.json`` and a copy lands at
the repo root (``BENCH_campaign.json``) as the commit's perf baseline.
Campaign runs leave :mod:`repro.obs` run records under
``results/obs_campaign/{serial,pipelined,batched-serial,batched}`` so CI
can gate with::

    repro obs report benchmarks/results/obs_campaign/batched-serial \
        --diff benchmarks/results/obs_campaign/batched --fail-on-regression

(pipelining the batched engine must never be a >20% span regression over
its serial schedule; same contract as the serial/pipelined pair).

Speed assertions are hardware-honest where they must be: the pipelined
>= 2x gate still needs >= 2 effective cores (a single core cannot
overlap anything), but the batched >= 2x gate holds on any host off the
``quick`` profile — fusing K models and skipping frozen-prefix backprop
is cheaper arithmetic, not parallelism.
"""

import copy
import os
import shutil
import time
from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, publish
from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.experiments.runner import ExperimentResult
from repro.metrics import score_reconstruction
from repro.obs import RunRecorder
from repro.sampling import SampledField

#: grid dims per --bench-profile
SIZES = {"quick": (16, 16, 8), "bench": (36, 36, 18), "paper": (64, 64, 32)}
#: pretraining epochs (campaign fine-tuning always uses FINETUNE_EPOCHS)
EPOCHS = {"quick": 3, "bench": 8, "paper": 20}
#: the Fig 11-style timestep stream (>= 4 stored steps on every profile)
TIMESTEPS = {
    "quick": (0, 2, 4, 6),
    "bench": (0, 3, 6, 9, 12),
    "paper": (0, 2, 4, 6, 8, 10, 12, 14),
}
HIDDEN = {"quick": (32, 16), "bench": (64, 32, 16), "paper": (128, 64, 32, 16)}

FRACTION = 0.05
#: per-timestep fine-tune budget.  2 epochs (the pre-batched value) is so
#: small that fixed per-campaign costs dominate every config; 6 keeps the
#: bench minutes-scale while weighting fine-tune realistically (the paper
#: runs Case 1 at ~10 epochs and Case 2 at 300-500).
FINETUNE_EPOCHS = 6
CONFIGS = ("legacy", "serial", "pipelined", "batched-serial", "batched")
OBS_DIRS = {
    name: RESULTS_DIR / "obs_campaign" / name for name in CONFIGS if name != "legacy"
}
REPO_ROOT = Path(__file__).resolve().parent.parent


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _legacy_campaign(pipeline, base, timesteps):
    """The pre-PR per-timestep loop (deepcopy + cold geometry every step)."""
    model = copy.deepcopy(base)
    sample0 = pipeline.sample(pipeline.field(timesteps[0]), FRACTION)
    rows, volumes, finetune_s = [], [], 0.0
    for t in timesteps:
        fld = pipeline.field(t)
        train = [pipeline.sample(fld, f) for f in pipeline.train_fractions]
        history = model.fine_tune(fld, train, epochs=FINETUNE_EPOCHS, strategy="full")
        finetune_s += history.total_seconds
        # fresh SampledField per step: void geometry, kd-tree and neighbor
        # indices all recomputed — exactly what CampaignGeometry now amortizes
        sample = SampledField(
            grid=fld.grid,
            indices=sample0.indices.copy(),
            values=fld.values.ravel()[sample0.indices],
            fraction=FRACTION,
            timestep=t,
        )
        volume = model.reconstruct(sample)
        rows.append({"timestep": t, **score_reconstruction(fld.values, volume).as_dict()})
        volumes.append(volume)
    return {"rows": rows, "volumes": volumes, "finetune_s": finetune_s}


def _run_campaign(pipeline, base, timesteps, *, name, obs_dir, profile):
    shutil.rmtree(obs_dir, ignore_errors=True)
    batched = name.startswith("batched")
    overlapped = name in ("pipelined", "batched")
    with RunRecorder(obs_dir, meta={"config": name, "profile": profile}):
        result = pipeline.run_campaign(
            base.clone(),
            timesteps,
            FRACTION,
            finetune_epochs=FINETUNE_EPOCHS,
            # Batched configs run the documented Case-2 fast path (frozen
            # prefix + activation cache); the rolling trio keeps Case 1.
            finetune_strategy="last" if batched else "full",
            batched_finetune=batched,
            pipeline=overlapped,
            warm_pool=overlapped,
        )
    # keep only the deterministic score columns (the legacy loop has no
    # wall-clock column, and bit-identity implies zero degraded points)
    assert all(row["degraded_points"] == 0 for row in result.rows)
    drop = ("finetune_seconds", "degraded_points")
    rows = [{k: v for k, v in row.items() if k not in drop} for row in result.rows]
    return {
        "rows": rows,
        "volumes": result.reconstructions,
        "finetune_s": result.finetune_seconds,
        "stats": result.stats,
    }


def test_campaign_pipeline(benchmark, bench_profile):
    profile = bench_profile
    timesteps = TIMESTEPS[profile]
    data = make_dataset("combustion", dims=SIZES[profile], seed=0)
    pipeline = ReconstructionPipeline(
        data, train_fractions=(0.01, 0.05), keep_reconstructions=True
    )
    base = FCNNReconstructor(hidden_layers=HIDDEN[profile], batch_size=4096, seed=0)
    pipeline.train_fcnn(base, timestep=timesteps[0], epochs=EPOCHS[profile])

    def run():
        out = {}
        for name in CONFIGS:
            t0 = time.perf_counter()
            if name == "legacy":
                out[name] = _legacy_campaign(pipeline, base, timesteps)
            else:
                out[name] = _run_campaign(
                    pipeline,
                    base,
                    timesteps,
                    name=name,
                    obs_dir=OBS_DIRS[name],
                    profile=profile,
                )
            out[name]["wall_s"] = time.perf_counter() - t0
        return out

    # One warmup round: the first batched fine-tune pays one-time allocator
    # and BLAS warmup for its (K, N, width) slabs, which would otherwise be
    # billed to whichever config happens to run first.
    runs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    legacy, pipelined, batched = runs["legacy"], runs["pipelined"], runs["batched"]

    # --- bit-exactness (strict on every profile) --------------------------
    # Scores are floats, so dict equality means bit-equal; volumes are
    # compared on raw bytes.  Two seams: the rolling trajectory must be
    # untouched by this PR, and the from-base trajectory must be invariant
    # to the scheduler, the warm pool and the fine-tune block size.
    scores = [{k: v for k, v in row.items() if k != "timestep"} for row in legacy["rows"]]
    for name in ("serial", "pipelined"):
        assert runs[name]["rows"] == legacy["rows"], f"{name} scores drifted from legacy"
        for t, mine, theirs in zip(timesteps, runs[name]["volumes"], legacy["volumes"]):
            assert mine.tobytes() == theirs.tobytes(), f"{name} t={t} not bit-identical"
    assert batched["rows"] == runs["batched-serial"]["rows"], (
        "batched scores drifted from the batched-serial schedule"
    )
    for t, mine, theirs in zip(
        timesteps, batched["volumes"], runs["batched-serial"]["volumes"]
    ):
        assert mine.tobytes() == theirs.tobytes(), f"batched t={t} not bit-identical"
    # From-base Case 2 is a *different* trajectory than rolling Case 1 —
    # same stream, same scoring, finite output everywhere.
    assert [r["timestep"] for r in batched["rows"]] == list(timesteps)
    assert len(legacy["volumes"]) == len(timesteps) >= 4
    for name in ("legacy", "batched"):
        assert all(np.isfinite(v).all() for v in runs[name]["volumes"])

    # --- speedups ---------------------------------------------------------
    end_to_end = legacy["wall_s"] / batched["wall_s"]
    pipelined_speedup = legacy["wall_s"] / pipelined["wall_s"]
    serial_vs_pipelined = runs["serial"]["wall_s"] / pipelined["wall_s"]
    overhead = {n: runs[n]["wall_s"] - runs[n]["finetune_s"] for n in runs}
    overhead_speedup = overhead["legacy"] / max(overhead["pipelined"], 1e-9)
    stats = batched["stats"]

    rows = []
    for name in CONFIGS:
        rows.append(
            {
                "config": name,
                "wall_s": round(runs[name]["wall_s"], 4),
                "finetune_s": round(runs[name]["finetune_s"], 4),
                "overhead_s": round(overhead[name], 4),
                "speedup_vs_legacy": round(legacy["wall_s"] / runs[name]["wall_s"], 2),
                "bit_identical": True,
                "mean_snr": round(
                    float(np.mean([r["snr"] for r in runs[name]["rows"]])), 4
                ),
            }
        )
    result = ExperimentResult(
        experiment="campaign",
        rows=rows,
        series={"wall_s": {r["config"]: r["wall_s"] for r in rows}},
        notes={
            "profile": profile,
            "dims": "x".join(str(d) for d in SIZES[profile]),
            "timesteps": list(timesteps),
            "fraction": FRACTION,
            "finetune_epochs": FINETUNE_EPOCHS,
            "hidden_layers": HIDDEN[profile],
            "effective_cores": _effective_cores(),
            "end_to_end_speedup": round(end_to_end, 3),
            "pipelined_speedup": round(pipelined_speedup, 3),
            "serial_vs_pipelined_speedup": round(serial_vs_pipelined, 3),
            "overhead_speedup": round(overhead_speedup, 3),
            "occupancy": {
                "prefetch": round(stats.occupancy("prefetch"), 3),
                "finetune": round(stats.occupancy("process"), 3),
                "reconstruct": round(stats.occupancy("emit"), 3),
            },
            "batched": {
                "strategy": "last",
                "identical_to": "batched-serial",
                "mean_snr_legacy": round(float(np.mean([r["snr"] for r in scores])), 4),
            },
            "target": "end_to_end_speedup (legacy/batched) >= 2x on bench profile, any core count",
        },
    )
    publish(result)
    # the commit's campaign perf baseline lives at the repo root
    shutil.copyfile(RESULTS_DIR / "BENCH_campaign.json", REPO_ROOT / "BENCH_campaign.json")

    # --- speed (hardware-honest gates) ------------------------------------
    # quick-profile sizes measure harness noise, so gates apply off-quick
    # only.  The batched gate has no core-count condition: fused stacks and
    # the Case-2 prefix cache are cheaper arithmetic, not parallelism.  The
    # pipelined overlap gate still needs real cores.
    if profile != "quick":
        assert end_to_end >= 2.0, (
            f"end-to-end campaign speedup {end_to_end:.2f}x < 2x "
            f"(legacy {legacy['wall_s']:.2f}s vs batched {batched['wall_s']:.2f}s)"
        )
        # On one core the scheduler threads have nothing to overlap into,
        # so pipelined == legacy work + handoff noise; allow that noise.
        floor = 1.0 if _effective_cores() >= 2 else 0.9
        assert pipelined_speedup >= floor, (
            f"pipelined slower than legacy ({pipelined_speedup:.2f}x < {floor}x)"
        )
        if _effective_cores() >= 2:
            assert pipelined_speedup >= 2.0, (
                f"pipelined campaign speedup {pipelined_speedup:.2f}x < 2x "
                f"on {_effective_cores()} cores"
            )
