"""Fig 14 + Table II — training-set sub-sampling (100% / 50% / 25%).

Shape asserted:
* training time drops roughly linearly with the training fraction
  (Table II: 533s -> 275s -> 161s on the paper's hardware);
* quality loss from sub-sampling is small (Fig 14: "the decrease in
  quality ... was negligible").
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_training_subset


def test_fig14_tab2_training_subset(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_training_subset.run, config)
    publish(result)

    times = dict(result.series["train_seconds"])
    assert times[0.5] < 0.75 * times[1.0], "50% data must cut training time substantially"
    assert times[0.25] < times[0.5], "25% data must be cheaper than 50%"

    series = {k: dict(v) for k, v in result.series.items() if k.endswith("%")}
    fracs = sorted(series["100%"])
    full = np.array([series["100%"][f] for f in fracs])
    half = np.array([series["50%"][f] for f in fracs])
    quarter = np.array([series["25%"][f] for f in fracs])
    # Negligible quality loss: mean SNR within ~1.5 dB of the full run.
    assert half.mean() > full.mean() - 1.5
    assert quarter.mean() > full.mean() - 2.5
