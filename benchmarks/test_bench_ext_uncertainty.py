"""Extension bench — deep-ensemble uncertainty (paper future work).

Shape asserted:
* the ensemble mean does not lose quality versus a single model;
* the per-voxel ensemble std correlates positively with actual error
  (uncertainty ranks where the reconstruction is wrong);
* 2-sigma coverage is meaningfully high (the band is informative).
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_uncertainty


def test_ext_uncertainty(benchmark, bench_config):
    config = bench_config()
    config = config.scaled(test_fractions=(0.005, 0.01, 0.03))
    result = run_once(benchmark, exp_uncertainty.run, config, num_members=3)
    publish(result)

    snr_single = np.array([r["snr_single"] for r in result.rows])
    snr_ensemble = np.array([r["snr_ensemble"] for r in result.rows])
    corr = np.array([r["err_unc_corr"] for r in result.rows])
    coverage = np.array([r["coverage_2sigma"] for r in result.rows])

    assert snr_ensemble.mean() > snr_single.mean() - 0.5, (
        f"ensemble mean {snr_ensemble.mean():.2f} lost too much vs single {snr_single.mean():.2f}"
    )
    assert (corr > 0.1).all(), f"uncertainty must rank error, corr={corr}"
    assert coverage.mean() > 0.5, f"2-sigma coverage too low: {coverage}"
