"""Extension bench — feature preservation (isosurfaces survive the trip).

Shape asserted: the Fig 9 quality ordering carries over to the
visualization-level metrics — FCNN and linear preserve the feature
isosurface (IoU) better than nearest neighbor, and every method's IoU
improves with sampling rate.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_feature_preservation


def test_ext_feature_preservation(benchmark, bench_config):
    config = bench_config()
    config = config.scaled(test_fractions=(0.005, 0.01, 0.03, 0.05))
    result = run_once(benchmark, exp_feature_preservation.run, config)
    publish(result)

    series = {k: dict(v) for k, v in result.series.items()}
    fracs = sorted(series["fcnn"])

    def avg(name):
        return float(np.mean([series[name][f] for f in fracs]))

    assert avg("fcnn") > avg("nearest"), "FCNN must preserve the isosurface better than nearest"
    assert avg("linear") > avg("nearest")
    # Preservation improves with more samples for the strong methods.
    assert series["fcnn"][fracs[-1]] > series["fcnn"][fracs[0]]
    assert series["linear"][fracs[-1]] > series["linear"][fracs[0]]
    # Value distributions survive too: histogram intersection stays high
    # for the FCNN at the densest rate.
    dense_rows = [r for r in result.rows if r["fraction"] == fracs[-1] and r["method"] == "fcnn"]
    assert dense_rows[0]["hist_isect"] > 0.8
