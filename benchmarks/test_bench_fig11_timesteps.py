"""Fig 11 — reconstruction quality across timesteps (Hurricane, 3%).

Shape asserted:
* each pretrained-only model is best near its own training timestep and
  degrades with temporal distance;
* 10-epoch fine-tuned models beat their pretrained-only counterparts on
  average;
* fine-tuned FCNNs beat the linear baseline on average across the run
  (the paper's headline for this experiment).
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_timesteps


def test_fig11_timesteps(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_timesteps.run, config)
    publish(result)

    series = {k: dict(v) for k, v in result.series.items()}
    timesteps = sorted(series["linear"])
    t_a, t_b = result.notes["pretrain_timesteps"]

    def avg(name):
        return float(np.mean([series[name][t] for t in timesteps]))

    # Pretrained-only degrades away from its training timestep: quality at
    # the far end is below quality at the training timestep.
    pre_a = series["fcnn-pre@A"]
    far = max(timesteps, key=lambda t: abs(t - t_a))
    assert pre_a[far] < pre_a[t_a], "pretrained model must degrade away from its timestep"

    # Fine-tuning recovers: ft beats pre on average for both bases.
    assert avg("fcnn-ft@A") > avg("fcnn-pre@A")
    assert avg("fcnn-ft@B") > avg("fcnn-pre@B")

    # Fine-tuned models beat the linear baseline on average.
    assert avg("fcnn-ft@A") > avg("linear") - 0.3
    assert avg("fcnn-ft@B") > avg("linear") - 0.3
    assert max(avg("fcnn-ft@A"), avg("fcnn-ft@B")) > avg("linear")
