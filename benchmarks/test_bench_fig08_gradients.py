"""Fig 8 — gradient vs no-gradient output layer.

The paper reports the with-gradient model consistently above the
without-gradient one.  On our smooth analytic fields the auxiliary gradient
head is weaker than on real turbulent data (see EXPERIMENTS.md), so the
asserted shape is the conservative core of the claim: the gradient head
must not *hurt* materially, and the two variants must track each other
across the sweep.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_gradient_ablation


def test_fig08_gradient_ablation(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_gradient_ablation.run, config)
    publish(result)

    series = {k: dict(v) for k, v in result.series.items()}
    with_g = series["with-gradient"]
    without_g = series["without-gradient"]

    avg_with = float(np.mean(list(with_g.values())))
    avg_without = float(np.mean(list(without_g.values())))
    # Multi-task gradient supervision must stay within ~1 dB of the
    # scalar-only model on average (paper: it helps outright).
    assert avg_with > avg_without - 1.0, (
        f"gradient head cost too much: {avg_with:.2f} vs {avg_without:.2f}"
    )
    # Both models follow the same quality-vs-sampling trend (correlated).
    fracs = sorted(with_g)
    a = np.array([with_g[f] for f in fracs])
    b = np.array([without_g[f] for f in fracs])
    assert np.corrcoef(a, b)[0, 1] > 0.8
