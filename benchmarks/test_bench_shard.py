"""Shard-parallel campaign benchmark — domain decomposition (``BENCH_shard``).

Five runs of the same Fig 11-style campaign (pretrained FCNN, per-timestep
fine-tune + full reconstruction) over identical timesteps:

* ``pipelined``       — the unsharded PR 5 baseline: rolling Case-1
  fine-tune on the streaming scheduler + warm shm pool.  This is the
  gate's denominator ("the unsharded pipelined path").
* ``batched``         — unsharded ``batched_finetune=True`` with the
  documented Case-2 fast path (the PR 8 headline config): the bit-identity
  reference that isolates what sharding itself adds or costs.
* ``sharded-2`` / ``sharded-4`` — the tentpole: ``shards=2`` / ``4`` with
  ``shard_scope="global"`` on top of ``batched``.  Reconstruction fans out
  one task per shard chunk over the shm transport (per-shard kd-trees and
  geometry caches, halo exchange via the shared sample segment) and the
  stitcher scatters interior regions through the partition-of-unity
  permutation.  The halo is sized so ``seam_check()`` *proves* every kNN
  query resolves inside its shard — both configs must be **bit-identical**
  to ``batched``.
* ``sharded-local-4`` — ``shard_scope="local"``: one model per
  (timestep, shard), fine-tuned on its halo-extended box through one
  fused :mod:`repro.nn.batched` submission (shards x timesteps members).
  A different trajectory by design: gated on SNR parity, not bits.

Measured quantities:

* ``sharded_speedup``  — pipelined wall / sharded-4 wall (the ISSUE's
  headline: >= 1.8x on the bench profile).  Like the batched >= 2x gate
  in ``test_bench_campaign.py`` this holds on any host off ``quick``:
  the campaign rides the fused Case-2 engine (cheaper arithmetic), and
  shard fan-out must not eat that win even on one core — on multi-core
  hosts the per-shard tasks additionally run in parallel workers.
* ``shard_overhead``   — sharded-4 wall / batched wall (what the
  decomposition itself costs when it cannot parallelize).
* per-config wall clock, mean SNR, and the local-scope SNR delta.

``publish()`` writes ``results/BENCH_shard.json`` and a copy lands at the
repo root (``BENCH_shard.json``) as the commit's perf baseline.  Runs
leave :mod:`repro.obs` records under ``results/obs_shard/<config>`` so CI
can gate with::

    repro obs report benchmarks/results/obs_shard/batched \
        --diff benchmarks/results/obs_shard/sharded-4 \
        --only 'train.*' --fail-on-regression

(scope="global" sharding touches reconstruction only — the training
kernels must not dilate when the reconstruct stage fans out per shard).
"""

import os
import shutil
import time
from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, publish
from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.experiments.runner import ExperimentResult
from repro.obs import RunRecorder
from repro.perf.campaign import CampaignGeometry
from repro.shard import ShardPlan, ShardedCampaignGeometry, parse_shards, suggest_halo

#: grid dims per --bench-profile (mirrors test_bench_campaign.py)
SIZES = {"quick": (16, 16, 8), "bench": (36, 36, 18), "paper": (64, 64, 32)}
EPOCHS = {"quick": 3, "bench": 8, "paper": 20}
TIMESTEPS = {
    "quick": (0, 2, 4, 6),
    "bench": (0, 3, 6, 9, 12),
    "paper": (0, 2, 4, 6, 8, 10, 12, 14),
}
HIDDEN = {"quick": (32, 16), "bench": (64, 32, 16), "paper": (128, 64, 32, 16)}

FRACTION = 0.05
FINETUNE_EPOCHS = 6
CONFIGS = ("pipelined", "batched", "sharded-2", "sharded-4", "sharded-local-4")
OBS_DIRS = {name: RESULTS_DIR / "obs_shard" / name for name in CONFIGS}
REPO_ROOT = Path(__file__).resolve().parent.parent


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _exact_halo(pipeline, timestep, counts, num_neighbors):
    """The smallest stencil-suggested halo whose seams provably resolve.

    Starts at :func:`suggest_halo` (safety-padded kNN ball) and widens
    until ``seam_check`` certifies that every shard's candidate list is
    deep enough and no canonical neighbor can cross an open face — the
    precondition for the bit-identity assertions below.
    """
    geometry = CampaignGeometry.from_sample(
        pipeline.sample(pipeline.field(timestep), FRACTION)
    )
    halo = suggest_halo(num_neighbors, FRACTION)
    while halo < max(geometry.grid.dims):
        plan = ShardPlan.create(geometry.grid, counts, halo)
        if ShardedCampaignGeometry(plan, geometry).seam_check(num_neighbors).exact:
            return halo
        halo += 2
    return max(geometry.grid.dims)  # every ext box spans the grid: trivially exact


def _run(pipeline, base, timesteps, *, name, profile, halo):
    obs_dir = OBS_DIRS[name]
    shutil.rmtree(obs_dir, ignore_errors=True)
    sharded = name.startswith("sharded")
    kwargs = {}
    if sharded:
        kwargs = dict(
            shards=int(name.rsplit("-", 1)[1]),
            halo=halo,
            shard_scope="local" if "-local-" in name else "global",
        )
    batched = name != "pipelined"
    with RunRecorder(obs_dir, meta={"config": name, "profile": profile}):
        result = pipeline.run_campaign(
            base.clone(),
            timesteps,
            FRACTION,
            finetune_epochs=FINETUNE_EPOCHS,
            finetune_strategy="last" if batched else "full",
            batched_finetune=batched,
            pipeline=True,
            warm_pool=True,
            **kwargs,
        )
    assert all(row["degraded_points"] == 0 for row in result.rows)
    drop = ("finetune_seconds", "degraded_points")
    rows = [{k: v for k, v in row.items() if k not in drop} for row in result.rows]
    return {
        "rows": rows,
        "volumes": result.reconstructions,
        "finetune_s": result.finetune_seconds,
    }


def test_shard_campaign(benchmark, bench_profile):
    profile = bench_profile
    timesteps = TIMESTEPS[profile]
    data = make_dataset("combustion", dims=SIZES[profile], seed=0)
    pipeline = ReconstructionPipeline(
        data, train_fractions=(0.01, 0.05), keep_reconstructions=True
    )
    base = FCNNReconstructor(hidden_layers=HIDDEN[profile], batch_size=4096, seed=0)
    pipeline.train_fcnn(base, timestep=timesteps[0], epochs=EPOCHS[profile])
    # One proven-exact halo sized for the finest decomposition (4 shards);
    # coarser decompositions of the same grid can only have fewer seams.
    halo = _exact_halo(pipeline, timesteps[0], parse_shards(4), base.extractor.num_neighbors)

    def run():
        out = {}
        for name in CONFIGS:
            t0 = time.perf_counter()
            out[name] = _run(
                pipeline, base, timesteps, name=name, profile=profile, halo=halo
            )
            out[name]["wall_s"] = time.perf_counter() - t0
        # Second timing sweep, keeping the per-config minimum: every config
        # is deterministic (the bit-identity asserts below depend on it), so
        # the only thing a repeat measures is host noise — and the speedup
        # gates sit close enough to it that a single ordered sweep can tip
        # them either way on a busy box.  min-of-two also debiases slow
        # drift that penalizes whichever config happens to run last.
        for name in CONFIGS:
            t0 = time.perf_counter()
            _run(pipeline, base, timesteps, name=name, profile=profile, halo=halo)
            out[name]["wall_s"] = min(out[name]["wall_s"], time.perf_counter() - t0)
        return out

    # One warmup round: first-touch shm segments, per-shard kd-trees and
    # the batched engine's slab allocations would otherwise be billed to
    # whichever config runs first.
    runs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    pipelined, batched = runs["pipelined"], runs["batched"]
    sharded4, local4 = runs["sharded-4"], runs["sharded-local-4"]

    # --- bit-exactness (strict on every profile) --------------------------
    # scope="global" sharding is a pure reconstruction-transport change:
    # with a seam-proven halo, any shard count is bit-identical to the
    # unsharded batched campaign (scores are floats, so dict equality
    # means bit-equal; volumes compare raw bytes).
    for name in ("sharded-2", "sharded-4"):
        assert runs[name]["rows"] == batched["rows"], f"{name} scores drifted"
        for t, mine, theirs in zip(timesteps, runs[name]["volumes"], batched["volumes"]):
            assert mine.tobytes() == theirs.tobytes(), f"{name} t={t} not bit-identical"
    # scope="local" is a different trajectory: finite everywhere, SNR parity.
    assert all(np.isfinite(v).all() for v in local4["volumes"])
    snr_deltas = [
        abs(mine["snr"] - theirs["snr"])
        for mine, theirs in zip(local4["rows"], batched["rows"])
    ]
    assert [r["timestep"] for r in sharded4["rows"]] == list(timesteps)
    assert len(pipelined["volumes"]) == len(timesteps) >= 4

    # --- speedups ---------------------------------------------------------
    sharded_speedup = pipelined["wall_s"] / sharded4["wall_s"]
    sharded2_speedup = pipelined["wall_s"] / runs["sharded-2"]["wall_s"]
    shard_overhead = sharded4["wall_s"] / batched["wall_s"]

    rows = []
    for name in CONFIGS:
        rows.append(
            {
                "config": name,
                "wall_s": round(runs[name]["wall_s"], 4),
                "finetune_s": round(runs[name]["finetune_s"], 4),
                "speedup_vs_pipelined": round(
                    pipelined["wall_s"] / runs[name]["wall_s"], 2
                ),
                "bit_identical_to_batched": name in ("batched", "sharded-2", "sharded-4"),
                "mean_snr": round(
                    float(np.mean([r["snr"] for r in runs[name]["rows"]])), 4
                ),
            }
        )
    result = ExperimentResult(
        experiment="shard",
        rows=rows,
        series={"wall_s": {r["config"]: r["wall_s"] for r in rows}},
        notes={
            "profile": profile,
            "dims": "x".join(str(d) for d in SIZES[profile]),
            "timesteps": list(timesteps),
            "fraction": FRACTION,
            "finetune_epochs": FINETUNE_EPOCHS,
            "hidden_layers": HIDDEN[profile],
            "effective_cores": _effective_cores(),
            "halo": halo,
            "seam_proven_exact": True,
            "sharded_speedup": round(sharded_speedup, 3),
            "sharded2_speedup": round(sharded2_speedup, 3),
            "shard_overhead_vs_batched": round(shard_overhead, 3),
            "local_scope_max_snr_delta_db": round(max(snr_deltas), 4),
            "target": "sharded_speedup (pipelined/sharded-4) >= 1.8x on bench profile",
        },
    )
    publish(result)
    # the commit's shard perf baseline lives at the repo root
    shutil.copyfile(RESULTS_DIR / "BENCH_shard.json", REPO_ROOT / "BENCH_shard.json")

    # --- gates (off-quick: quick sizes measure harness noise) -------------
    if profile != "quick":
        assert sharded_speedup >= 1.8, (
            f"sharded campaign speedup {sharded_speedup:.2f}x < 1.8x "
            f"(pipelined {pipelined['wall_s']:.2f}s vs sharded-4 "
            f"{sharded4['wall_s']:.2f}s on {_effective_cores()} core(s))"
        )
        # The decomposition must stay cheap even where it cannot overlap:
        # per-shard trees + chunk fan-out may cost at most 50% over the
        # unsharded batched run on any host.
        assert shard_overhead <= 1.5, (
            f"shard fan-out overhead {shard_overhead:.2f}x over batched"
        )
        # Local scope holds SNR parity with the from-base trajectory.
        assert max(snr_deltas) <= 0.25, (
            f"local-scope SNR drifted {max(snr_deltas):.3f} dB from unsharded"
        )
