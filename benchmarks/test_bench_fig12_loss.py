"""Fig 12 — loss progression: full training vs fine-tuning.

Shape asserted:
* full training descends substantially and needs many epochs to converge;
* fine-tuning converges within its ~10-epoch budget (the paper's "models
  fine-tune very quickly to the new data");
* the transfer advantage, measured in scale-free SNR (raw losses of the
  fine-tuned and from-scratch runs live in different normalization spaces
  — see the experiment docstring): after the same 10-epoch budget, the
  pretrained+fine-tuned model reconstructs better than a from-scratch one.
"""

import numpy as np

from conftest import publish, run_once
from repro.experiments import exp_loss_curves


def _epochs_to_reach(series, target):
    for i, v in enumerate(series):
        if v <= target:
            return i
    return len(series)


def test_fig12_loss_curves(benchmark, bench_config):
    config = bench_config()
    result = run_once(benchmark, exp_loss_curves.run, config)
    publish(result)

    full = [v for _, v in result.series["full-training"]]
    tune = [v for _, v in result.series["fine-tuning"]]

    # Full training descends and takes its time.
    assert full[-1] < 0.5 * full[0], "full training must descend"
    slow = _epochs_to_reach(full, full[-1] * 1.5)
    assert slow > 10, f"full training converged suspiciously fast ({slow} epochs)"

    # Fine-tuning converges within its short budget.
    assert tune[-1] < 0.6 * tune[0], (
        f"fine-tuning must converge within ~10 epochs: {tune[0]:.4f} -> {tune[-1]:.4f}"
    )
    assert not np.isnan(tune).any()

    # Transfer advantage in SNR at the tune timestep.
    assert result.notes["snr_finetuned"] > result.notes["snr_from_scratch"], (
        f"fine-tuned {result.notes['snr_finetuned']:.2f} dB must beat "
        f"from-scratch {result.notes['snr_from_scratch']:.2f} dB at equal budget"
    )
