"""Micro-benchmarks of the library's hot kernels.

Unlike the figure/table benches (one-shot experiment regeneration), these
use pytest-benchmark's normal multi-round timing to track the cost of the
individual building blocks: sampler draws, feature extraction, NN
forward/backward, and each interpolator's void fill.
"""

import numpy as np
import pytest

from repro.core import FCNNReconstructor, FeatureExtractor
from repro.datasets import HurricaneDataset
from repro.interpolation import make_interpolator
from repro.nn import Adam, MSELoss, mlp
from repro.sampling import MultiCriteriaSampler, RandomSampler


@pytest.fixture(scope="module")
def field():
    grid = HurricaneDataset.default_grid().with_resolution((30, 30, 10))
    return HurricaneDataset(grid=grid).field(t=0)


@pytest.fixture(scope="module")
def sample(field):
    return MultiCriteriaSampler(seed=0).sample(field, 0.02)


class TestSamplerKernels:
    def test_random_sampler(self, benchmark, field):
        sampler = RandomSampler(seed=0)
        benchmark(sampler.sample, field, 0.02)

    def test_multicriteria_sampler(self, benchmark, field):
        sampler = MultiCriteriaSampler(seed=0)
        benchmark(sampler.sample, field, 0.02)


class TestFeatureKernels:
    def test_feature_extraction(self, benchmark, field, sample):
        extractor = FeatureExtractor()
        normalizer = extractor.fit_normalizer(sample, field=field)
        query = sample.void_points()
        benchmark(extractor.features, sample, query, normalizer)

    def test_training_data_assembly(self, benchmark, field, sample):
        extractor = FeatureExtractor()
        normalizer = extractor.fit_normalizer(sample, field=field)
        benchmark(extractor.training_data, field, sample, normalizer)


class TestNNKernels:
    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(4096, 23)), rng.normal(size=(4096, 4))

    def test_forward(self, benchmark, batch):
        model = mlp(23, [128, 64, 32, 16], 4, seed=0)
        x, _ = batch
        benchmark(model.forward, x)

    def test_train_step(self, benchmark, batch):
        model = mlp(23, [128, 64, 32, 16], 4, seed=0)
        loss = MSELoss()
        opt = Adam(model.parameters())
        x, y = batch

        def step():
            pred = model.forward(x)
            opt.zero_grad()
            model.backward(loss.gradient(pred, y))
            opt.step()

        benchmark(step)


class TestInterpolatorKernels:
    @pytest.mark.parametrize("name", ["nearest", "shepard", "linear", "natural"])
    def test_reconstruct(self, benchmark, name, sample):
        method = make_interpolator(name)
        benchmark.pedantic(method.reconstruct, args=(sample,), rounds=3, iterations=1)


class TestFCNNInference:
    def test_fcnn_reconstruct(self, benchmark, field, sample):
        model = FCNNReconstructor(hidden_layers=(64, 32, 16), batch_size=4096, seed=0)
        model.train(field, sample, epochs=3)
        benchmark.pedantic(model.reconstruct, args=(sample,), rounds=3, iterations=1)
