"""Shared benchmark plumbing.

Each ``test_bench_*`` module regenerates one table/figure of the paper:
the experiment runs once under ``benchmark.pedantic`` (rounds=1 — the
measured quantity is the paper's, not the harness's) and the paper-style
rows are printed and saved under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks use the ``bench`` profile (CPU-scaled grids); pass
``--bench-profile=quick`` for a fast smoke pass or ``paper`` for the
paper-scale (hours) run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import get_config
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: schema version of the BENCH_<experiment>.json perf-baseline files
BENCH_SCHEMA = 1


def pytest_addoption(parser):
    parser.addoption(
        "--bench-profile",
        default="bench",
        choices=["quick", "bench", "paper"],
        help="experiment scale profile for the figure/table benchmarks",
    )
    parser.addoption(
        "--bench-obs",
        default=None,
        metavar="DIR",
        help="record repro.obs run telemetry for each benchmark under DIR",
    )


_BENCH_OBS: str | None = None


def pytest_configure(config):
    global _BENCH_OBS
    _BENCH_OBS = config.getoption("--bench-obs", default=None)


@pytest.fixture(scope="session")
def bench_profile(request) -> str:
    return request.config.getoption("--bench-profile")


@pytest.fixture(scope="session")
def bench_config(bench_profile):
    """Factory: the session profile's config with per-bench overrides."""

    def factory(**overrides):
        return get_config(bench_profile, **overrides)

    return factory


def _json_safe(obj):
    """Coerce numpy scalars/arrays (and anything else odd) to JSON types."""
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


def publish(result: ExperimentResult) -> None:
    """Print the paper-style rows and persist them under results/.

    Two artifacts per experiment: the human-readable table
    (``results/<experiment>.txt``) and a machine-readable perf baseline
    (``results/BENCH_<experiment>.json``) that ``repro obs report --diff``
    style tooling and CI can compare across commits.
    """
    text = result.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
    baseline = {
        "schema": BENCH_SCHEMA,
        "experiment": result.experiment,
        "notes": result.notes,
        "rows": result.rows,
        "series": result.series,
    }
    path = RESULTS_DIR / f"BENCH_{result.experiment}.json"
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True, default=_json_safe) + "\n")


def run_once(benchmark, runner, *args, **kwargs) -> ExperimentResult:
    """Execute an experiment exactly once under pytest-benchmark timing.

    With ``--bench-obs DIR`` the run executes inside a
    :class:`repro.obs.RunRecorder`, so each benchmark also leaves a
    ``DIR/<experiment-module>`` run record (JSONL events + run.json).
    """
    target = runner
    if _BENCH_OBS:
        from repro.obs import RunRecorder

        name = runner.__module__.rsplit(".", 1)[-1]

        def target(*a, **kw):
            with RunRecorder(Path(_BENCH_OBS) / name, meta={"benchmark": name}):
                return runner(*a, **kw)

    return benchmark.pedantic(target, args=args, kwargs=kwargs, rounds=1, iterations=1)
