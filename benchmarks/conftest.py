"""Shared benchmark plumbing.

Each ``test_bench_*`` module regenerates one table/figure of the paper:
the experiment runs once under ``benchmark.pedantic`` (rounds=1 — the
measured quantity is the paper's, not the harness's) and the paper-style
rows are printed and saved under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks use the ``bench`` profile (CPU-scaled grids); pass
``--bench-profile=quick`` for a fast smoke pass or ``paper`` for the
paper-scale (hours) run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import get_config
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-profile",
        default="bench",
        choices=["quick", "bench", "paper"],
        help="experiment scale profile for the figure/table benchmarks",
    )


@pytest.fixture(scope="session")
def bench_profile(request) -> str:
    return request.config.getoption("--bench-profile")


@pytest.fixture(scope="session")
def bench_config(bench_profile):
    """Factory: the session profile's config with per-bench overrides."""

    def factory(**overrides):
        return get_config(bench_profile, **overrides)

    return factory


def publish(result: ExperimentResult) -> None:
    """Print the paper-style rows and persist them under results/."""
    text = result.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")


def run_once(benchmark, runner, *args, **kwargs) -> ExperimentResult:
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(runner, args=args, kwargs=kwargs, rounds=1, iterations=1)
